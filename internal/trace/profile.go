package trace

import (
	"fmt"
	"sort"
)

// Profile parameterises a synthetic workload. All probabilities are in
// [0, 1]. The zero value is not useful; start from a named profile
// (ProfileByName) or fill every field.
type Profile struct {
	// Name identifies the workload.
	Name string
	// MemFrac is the fraction of instructions that access memory
	// (the paper's f_mem).
	MemFrac float64
	// StoreFrac is the fraction of memory instructions that are stores.
	StoreFrac float64
	// Footprint is the total data footprint in bytes. Addresses wrap
	// within it.
	Footprint uint64
	// HotBytes is the size of the hot region; HotFrac of the non-
	// sequential accesses fall in it with Zipf skew. HotBytes must be
	// <= Footprint (0 disables the hot region).
	HotBytes uint64
	// HotFrac is the probability a non-sequential access targets the hot
	// region.
	HotFrac float64
	// SeqFrac is the probability a memory access continues a sequential
	// (strided) sweep rather than jumping.
	SeqFrac float64
	// Stride is the sequential stride in bytes (0 means 8).
	Stride uint64
	// ChaseFrac is the probability a load depends on the previous load
	// (pointer chasing: the address cannot even be known before the
	// producer returns, so the consumer serialises behind it).
	ChaseFrac float64
	// DepDist is the mean register-dependency distance for compute
	// instructions; small values mean long dependence chains (low ILP).
	DepDist float64
	// ExecLat is the mean compute latency in cycles (>= 1).
	ExecLat float64
	// BurstLen and GapLen, when non-zero, alternate the stream between
	// memory-intense bursts of BurstLen instructions (memory fraction
	// boosted toward 1) and compute-only gaps of GapLen instructions.
	// They model the periodic behaviour the paper exploits (§I, obs. 3).
	BurstLen, GapLen int
	// Seed determines the stream; two generators with the same profile
	// produce identical traces.
	Seed uint64
}

// Validate reports the first problem with the profile, or nil.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile has no name")
	case p.MemFrac < 0 || p.MemFrac > 1:
		return fmt.Errorf("trace: %s: MemFrac %v out of [0,1]", p.Name, p.MemFrac)
	case p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("trace: %s: StoreFrac %v out of [0,1]", p.Name, p.StoreFrac)
	case p.Footprint == 0:
		return fmt.Errorf("trace: %s: zero footprint", p.Name)
	case p.HotBytes > p.Footprint:
		return fmt.Errorf("trace: %s: HotBytes %d exceeds footprint %d", p.Name, p.HotBytes, p.Footprint)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("trace: %s: HotFrac %v out of [0,1]", p.Name, p.HotFrac)
	case p.SeqFrac < 0 || p.SeqFrac > 1:
		return fmt.Errorf("trace: %s: SeqFrac %v out of [0,1]", p.Name, p.SeqFrac)
	case p.ChaseFrac < 0 || p.ChaseFrac > 1:
		return fmt.Errorf("trace: %s: ChaseFrac %v out of [0,1]", p.Name, p.ChaseFrac)
	case p.ExecLat < 1:
		return fmt.Errorf("trace: %s: ExecLat %v < 1", p.Name, p.ExecLat)
	case p.BurstLen < 0 || p.GapLen < 0:
		return fmt.Errorf("trace: %s: negative burst/gap length", p.Name)
	}
	return nil
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// profiles holds the built-in SPEC CPU2006-like workload profiles. The
// parameters encode the qualitative characteristics the paper's case
// studies depend on (see the package comment); they are not fitted to
// SPEC hardware counters.
var profiles = map[string]Profile{
	// Tiny working set: 4 KB L1 already captures it (paper §V-B:
	// "4 KB is large enough for 401.bzip2").
	"401.bzip2": {
		Name: "401.bzip2", MemFrac: 0.34, StoreFrac: 0.30,
		Footprint: 128 * kb, HotBytes: 3 * kb, HotFrac: 1.0,
		SeqFrac: 0.15, Stride: 8, ChaseFrac: 0.02,
		DepDist: 6, ExecLat: 1.2,
	},
	// Large instruction/data appetite: keeps gaining up to 64 KB
	// (paper: "64 KB is needed for 403.gcc").
	"403.gcc": {
		Name: "403.gcc", MemFrac: 0.40, StoreFrac: 0.32,
		Footprint: 512 * kb, HotBytes: 60 * kb, HotFrac: 1.0,
		SeqFrac: 0.10, Stride: 16, ChaseFrac: 0.05,
		DepDist: 5, ExecLat: 1.1,
	},
	// Pointer-chasing, memory bound; its APC2 "drops to its final value
	// at the first cache size increase" — a small hot set plus a huge
	// chased heap.
	"429.mcf": {
		Name: "429.mcf", MemFrac: 0.45, StoreFrac: 0.18,
		Footprint: 16 * mb, HotBytes: 8 * kb, HotFrac: 0.45,
		SeqFrac: 0.05, Stride: 8, ChaseFrac: 0.55,
		DepDist: 3, ExecLat: 1.1,
	},
	// Compute-heavy quantum chemistry; L1 growth both speeds it up and
	// cuts its L2 demand noticeably (paper §V-B).
	"416.gamess": {
		Name: "416.gamess", MemFrac: 0.30, StoreFrac: 0.25,
		Footprint: 256 * kb, HotBytes: 40 * kb, HotFrac: 1.0,
		SeqFrac: 0.30, Stride: 8, ChaseFrac: 0.01,
		DepDist: 8, ExecLat: 1.6,
	},
	// Lattice QCD streaming: cache-size-oblivious (paper: "little
	// performance improvement and little influence on L2 bandwidth").
	"433.milc": {
		Name: "433.milc", MemFrac: 0.38, StoreFrac: 0.22,
		Footprint: 16 * mb, HotBytes: 2 * kb, HotFrac: 0.55,
		SeqFrac: 0.80, Stride: 8, ChaseFrac: 0.01,
		DepDist: 10, ExecLat: 1.4,
	},
	// Bandwidth-hungry blocked stencil sweeps with high MLP; the
	// Table I subject.
	"410.bwaves": {
		Name: "410.bwaves", MemFrac: 0.42, StoreFrac: 0.20,
		Footprint: 256 * kb, HotBytes: 24 * kb, HotFrac: 1.0,
		SeqFrac: 0.75, Stride: 8, ChaseFrac: 0.01,
		DepDist: 5, ExecLat: 1.3,
		BurstLen: 4000, GapLen: 1500,
	},
	"450.soplex": {
		Name: "450.soplex", MemFrac: 0.39, StoreFrac: 0.15,
		Footprint: 512 * kb, HotBytes: 28 * kb, HotFrac: 1.0,
		SeqFrac: 0.35, Stride: 16, ChaseFrac: 0.12,
		DepDist: 6, ExecLat: 1.2,
	},
	"462.libquantum": {
		Name: "462.libquantum", MemFrac: 0.33, StoreFrac: 0.25,
		Footprint: 2 * mb, HotBytes: 4 * kb, HotFrac: 1.0,
		SeqFrac: 0.92, Stride: 8, ChaseFrac: 0.0,
		DepDist: 14, ExecLat: 1.1,
	},
	"470.lbm": {
		Name: "470.lbm", MemFrac: 0.44, StoreFrac: 0.45,
		Footprint: 8 * mb, HotBytes: 4 * kb, HotFrac: 0.50,
		SeqFrac: 0.85, Stride: 8, ChaseFrac: 0.0,
		DepDist: 12, ExecLat: 1.2,
	},
	"471.omnetpp": {
		Name: "471.omnetpp", MemFrac: 0.41, StoreFrac: 0.30,
		Footprint: 1 * mb, HotBytes: 36 * kb, HotFrac: 1.0,
		SeqFrac: 0.08, Stride: 8, ChaseFrac: 0.35,
		DepDist: 4, ExecLat: 1.1,
	},
	"437.leslie3d": {
		Name: "437.leslie3d", MemFrac: 0.40, StoreFrac: 0.25,
		Footprint: 1 * mb, HotBytes: 20 * kb, HotFrac: 1.0,
		SeqFrac: 0.65, Stride: 8, ChaseFrac: 0.01,
		DepDist: 10, ExecLat: 1.4,
	},
	"459.GemsFDTD": {
		Name: "459.GemsFDTD", MemFrac: 0.43, StoreFrac: 0.28,
		Footprint: 2 * mb, HotBytes: 16 * kb, HotFrac: 1.0,
		SeqFrac: 0.60, Stride: 8, ChaseFrac: 0.02,
		DepDist: 9, ExecLat: 1.3,
	},
	"482.sphinx3": {
		Name: "482.sphinx3", MemFrac: 0.36, StoreFrac: 0.12,
		Footprint: 512 * kb, HotBytes: 32 * kb, HotFrac: 1.0,
		SeqFrac: 0.40, Stride: 16, ChaseFrac: 0.05,
		DepDist: 7, ExecLat: 1.3,
	},
	"456.hmmer": {
		Name: "456.hmmer", MemFrac: 0.37, StoreFrac: 0.35,
		Footprint: 256 * kb, HotBytes: 10 * kb, HotFrac: 1.0,
		SeqFrac: 0.45, Stride: 8, ChaseFrac: 0.0,
		DepDist: 9, ExecLat: 1.2,
	},
	"444.namd": {
		Name: "444.namd", MemFrac: 0.28, StoreFrac: 0.20,
		Footprint: 256 * kb, HotBytes: 22 * kb, HotFrac: 1.0,
		SeqFrac: 0.35, Stride: 8, ChaseFrac: 0.01,
		DepDist: 11, ExecLat: 1.7,
	},
	"464.h264ref": {
		Name: "464.h264ref", MemFrac: 0.35, StoreFrac: 0.30,
		Footprint: 512 * kb, HotBytes: 14 * kb, HotFrac: 1.0,
		SeqFrac: 0.50, Stride: 16, ChaseFrac: 0.02,
		DepDist: 7, ExecLat: 1.3,
	},
}

// ProfileNames returns the built-in profile names in sorted order.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName returns a copy of the named built-in profile.
func ProfileByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
	}
	return p, nil
}

// MustProfile is ProfileByName for known-good names; it panics on error.
func MustProfile(name string) Profile {
	p, err := ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
