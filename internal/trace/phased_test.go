package trace

import (
	"testing"
)

func twoPhases() ([]Profile, [][]float64) {
	mem := MustProfile("429.mcf")
	cpu := MustProfile("444.namd")
	// Alternate deterministically: mem -> cpu -> mem ...
	trans := [][]float64{{0, 1}, {1, 0}}
	return []Profile{mem, cpu}, trans
}

func TestPhasedAlternates(t *testing.T) {
	profiles, trans := twoPhases()
	g := NewPhased("alt", profiles, trans, 1000, 7)
	if g.Name() != "alt" {
		t.Fatal("name")
	}
	// Memory fraction should swing between the two phases' characters.
	memFrac := func(n int) float64 {
		m := 0
		for i := 0; i < n; i++ {
			if g.Next().Kind.IsMem() {
				m++
			}
		}
		return float64(m) / float64(n)
	}
	f1 := memFrac(1000) // phase 0: mcf-like, fmem 0.45
	f2 := memFrac(1000) // phase 1: namd-like, fmem 0.28
	if f1 < f2+0.08 {
		t.Fatalf("phases not distinct: %v vs %v", f1, f2)
	}
	if g.Phase() != 1 {
		t.Fatalf("phase = %d after two dwells... (expected 1 at boundary)", g.Phase())
	}
}

func TestPhasedResetReproduces(t *testing.T) {
	profiles, trans := twoPhases()
	g := NewPhased("alt", profiles, trans, 500, 9)
	first := make([]Instr, 3000)
	for i := range first {
		first[i] = g.Next()
	}
	g.Reset()
	for i := range first {
		if got := g.Next(); got != first[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPhasedRandomTransitions(t *testing.T) {
	profiles, _ := twoPhases()
	trans := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	g := NewPhased("rand", profiles, trans, 100, 11)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			g.Next()
		}
		seen[g.Phase()] = true
	}
	if len(seen) != 2 {
		t.Fatalf("visited %d phases, want 2", len(seen))
	}
}

func TestPhasedAbsorbingPhase(t *testing.T) {
	profiles, _ := twoPhases()
	trans := [][]float64{{0, 0}, {1, 0}} // phase 0 absorbs
	g := NewPhased("absorb", profiles, trans, 10, 3)
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	if g.Phase() != 0 {
		t.Fatalf("escaped absorbing phase to %d", g.Phase())
	}
}

func TestPhasedPanicsOnBadInput(t *testing.T) {
	profiles, trans := twoPhases()
	cases := []func(){
		func() { NewPhased("x", nil, nil, 10, 1) },
		func() { NewPhased("x", profiles, [][]float64{{1}}, 10, 1) },
		func() { NewPhased("x", profiles, [][]float64{{1}, {1}}, 10, 1) },
		func() { NewPhased("x", profiles, trans, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
