package fabric

// The coordinator side of the fabric: owns the granule queue, the
// shared result cache, and every connected worker. All state lives
// under one mutex; the only goroutines are the TCP accept loop, one
// reader and one writer per connection, the tick loop, and (when the
// whole fleet is gone) the local-fallback drain.
//
// Scheduling invariants:
//
//   - a granule sits in exactly one place: the pending queue (id
//     order) or ≥1 workers' in-flight sets — never both;
//   - the pending queue is popped lowest-id-first among *ready*
//     granules (a transient-retry backoff delays readiness), so
//     earlier submissions are never starved by later ones;
//   - a dead worker's granules are re-queued (unless another holder
//     survives) and re-issued;
//   - a straggling or suspect-held granule is duplicated onto an idle
//     worker; the first result wins and later duplicates are ignored,
//     which is sound because executors are pure functions of the spec.
//
// The resilience layer (internal/resilience/fleet) hangs off the same
// mutex: heartbeat health classification runs on the tick loop's
// logical clock, the quarantine breaker gates handshakes, transient
// remote failures are re-queued on a seeded backoff schedule, and —
// when a journal is configured — every scheduling decision is fsynced
// before it takes effect, so a kill -9 of this process resumes from
// the journal plus the driver's result checkpoint.
//
// None of this affects result *values* or merge order: the driver
// consumes results through Submit in its own deterministic order, so
// scheduling is free to be opportunistic.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/obs"
	"lpm/internal/resilience/fleet"
)

// ErrCoordinatorClosed is returned by Submit when the coordinator shuts
// down with the granule still unresolved.
var ErrCoordinatorClosed = errors.New("fabric: coordinator closed")

// Options configure a coordinator.
type Options struct {
	// InFlight is the per-worker in-flight budget: how many granules a
	// worker may hold at once. Defaults to 2 — one executing, one
	// queued behind it so the worker never idles waiting on the wire.
	InFlight int
	// StraggleAfter is how long a granule may be held without a result
	// before it is duplicated onto an idle worker. 0 means the 30s
	// default; negative disables straggler re-issue.
	StraggleAfter time.Duration
	// TickEvery is the cadence of the coordinator's logical clock; all
	// health, backoff, and probation deadlines are measured in these
	// ticks. 0 means the 25ms default.
	TickEvery time.Duration
	// Heartbeat is the ping cadence assigned to proto-2 workers in the
	// welcome frame. 0 means the 250ms default; negative disables
	// heartbeats (and with them health classification).
	Heartbeat time.Duration
	// Health classifies worker silence in ticks; the zero value means
	// the default (suspect after 1s of silence, dead after 5s at the
	// default tick). Only proto-2 workers with heartbeats enabled are
	// classified — a proto-1 worker proves liveness only by results.
	Health fleet.HealthPolicy
	// Retry is the shared deterministic backoff policy for transient
	// granule retries. The zero value means fleet defaults seeded by
	// Seed.
	Retry fleet.RetryPolicy
	// Seed seeds the default retry policy's jitter stream.
	Seed uint64
	// RetryBudget is how many times a granule that failed with a
	// *transient* remote error is re-queued before the failure is
	// accepted. 0 means the default 3; negative disables retries.
	RetryBudget int
	// Quarantine is the circuit-breaker policy; the zero value means
	// the default (3 strikes, 400-tick probation).
	Quarantine fleet.QuarantinePolicy
	// ValidateEvery samples cross-validation: every Kth granule (by id)
	// is executed redundantly on two workers and the answers compared;
	// divergence re-runs on a third worker and quarantines the outlier.
	// 0 disables validation; 1 validates every granule.
	ValidateEvery int
	// JournalPath, when set, appends every scheduling decision to an
	// LPMCKPT1-framed journal at this path (fsynced per record). A
	// pre-existing journal is replayed first: quarantine decisions and
	// per-granule retry charges carry across a coordinator restart.
	JournalPath string
	// LocalFallbackAfter degrades to in-process execution when the
	// coordinator has had pending granules and zero live workers for
	// this long: the sweep finishes on the coordinator's own CPU rather
	// than hanging. 0 disables fallback; execution hands back to the
	// fleet as soon as a worker joins.
	LocalFallbackAfter time.Duration
	// Log receives structured coordinator diagnostics (worker joins,
	// deaths, re-issues) with worker/granule attrs; nil discards them.
	Log *slog.Logger
	// Obs, when set, receives the coordinator's fabric telemetry —
	// queue depth, per-worker in-flight, re-queue and straggler churn,
	// cache hit rate. Nil (the default) keeps every probe a nil-receiver
	// no-op, so instrumentation is zero-cost when observability is off.
	Obs *obs.Registry
}

// Stats is a snapshot of coordinator counters for tests and the CLIs.
type Stats struct {
	Workers       int // currently connected workers
	Joined        int // handshakes accepted over the coordinator's lifetime
	Submitted     int // distinct granules submitted
	Completed     int // granules resolved
	Requeued      int // granules re-queued after a worker died holding them
	Duplicated    int // straggler/suspect duplicates issued
	CacheHits     int // worker cache probes answered from the shared cache
	Heartbeats    int // ping frames received
	Suspects      int // healthy→suspect transitions
	Retried       int // transient-failure re-queues charged to retry budgets
	Quarantined   int // workers tripped into quarantine
	Readmitted    int // workers readmitted after probation
	Validated     int // cross-validated granules decided
	Divergent     int // cross-validations that caught disagreeing answers
	FallbackExecs int // granules executed in-process by the local fallback
}

// vote is one worker's answer to a cross-validated granule.
type vote struct {
	worker    string
	value     json.RawMessage
	errText   string
	transient bool
}

// digest is the comparison key for a vote: byte-equal values (or equal
// error text) agree.
func (v vote) digest() string { return string(v.value) + "\x00" + v.errText }

// granule is one unit of work: a (kind, key, spec) triple plus its
// resolution. done closes exactly once, after which value/errText are
// immutable.
type granule struct {
	id   uint64
	kind string
	key  string
	spec json.RawMessage

	done      chan struct{}
	value     json.RawMessage
	errText   string
	transient bool // errText's classification, carried into Submit's error

	queued     bool      // sitting in Coordinator.pending
	holders    int       // workers currently holding it in-flight
	issuedAt   time.Time // last issuance, for the latency histogram
	issuedTick uint64    // last issuance on the logical clock, for straggler aging
	readyTick  uint64    // dispatch not before this tick (transient-retry backoff)
	retries    int       // transient failures charged so far

	votesWanted int             // cross-validation copies required (0/1 = none)
	votes       []vote          // answers received, in arrival order
	issuedTo    map[string]bool // workers this granule was ever issued to
}

// resolved reports whether the granule has a result.
func (g *granule) resolved() bool {
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// voted reports whether the named worker already answered.
func (g *granule) voted(name string) bool {
	for _, v := range g.votes {
		if v.worker == name {
			return true
		}
	}
	return false
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	name     string
	conn     net.Conn
	proto    int // negotiated session protocol
	slots    int // worker-declared execution concurrency (informational)
	inflight map[uint64]*granule
	outbox   chan Msg
	dead     bool
	suspect  bool  // health state at last classification
	busy     int   // executing granules, from the last ping
	rtt      int64 // last reported ping round trip, microseconds
}

// Coordinator accepts workers and brokers granules between Submit
// callers and the worker fleet.
type Coordinator struct {
	opts          Options
	ln            net.Listener
	retry         fleet.RetryPolicy
	straggleTicks uint64 // 0 = straggler re-issue disabled
	fallbackTicks uint64 // 0 = local fallback disabled

	mu       sync.Mutex
	tick     uint64
	nextID   uint64
	byKey    map[string]*granule
	byID     map[uint64]*granule
	order    []*granule // submission order; straggler scans walk this, never a map
	pending  []*granule // dispatch queue, ascending id
	workers  []*remoteWorker
	stats    Stats
	tel      *Telemetry // nil when Options.Obs is nil; updates under mu
	health   *fleet.HealthTracker
	quar     *fleet.Quarantine
	journal  *fleet.Journal
	resumed  *fleet.JournalState // state recovered from a pre-existing journal
	idle     uint64              // consecutive ticks with pending work and no workers
	fallback bool                // local-fallback drain engaged

	closed    chan struct{}
	closeOnce sync.Once
	loops     sync.WaitGroup
}

// Listen starts a coordinator on addr (e.g. "127.0.0.1:0") and begins
// accepting workers immediately. Close releases everything.
func Listen(addr string, opts Options) (*Coordinator, error) {
	if opts.InFlight <= 0 {
		opts.InFlight = 2
	}
	if opts.StraggleAfter == 0 {
		opts.StraggleAfter = 30 * time.Second
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 25 * time.Millisecond
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 250 * time.Millisecond
	}
	if opts.Health == (fleet.HealthPolicy{}) {
		// ~2s to suspicion, ~10s to eviction at the default 25ms tick.
		// Deliberately lenient: a worker grinding a multi-second granule
		// on a saturated host misses several ping slots without being
		// hung, and suspicion already hedges with duplicates. A truly
		// hung TCP session is still caught in seconds.
		opts.Health = fleet.HealthPolicy{SuspectAfter: 80, DeadAfter: 400}
	}
	if opts.RetryBudget == 0 {
		opts.RetryBudget = 3
	}
	if opts.Quarantine == (fleet.QuarantinePolicy{}) {
		opts.Quarantine = fleet.DefaultQuarantinePolicy()
	}
	retry := opts.Retry
	if retry == (fleet.RetryPolicy{}) {
		retry = fleet.Defaults(opts.Seed)
		retry.Cap = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	c := &Coordinator{
		opts:   opts,
		ln:     ln,
		retry:  retry,
		byKey:  make(map[string]*granule),
		byID:   make(map[uint64]*granule),
		tel:    NewTelemetry(opts.Obs),
		health: fleet.NewHealthTracker(opts.Health),
		quar:   fleet.NewQuarantine(opts.Quarantine),
		closed: make(chan struct{}),
	}
	if opts.StraggleAfter > 0 {
		c.straggleTicks = ticksFor(opts.StraggleAfter, opts.TickEvery)
	}
	if opts.LocalFallbackAfter > 0 {
		c.fallbackTicks = ticksFor(opts.LocalFallbackAfter, opts.TickEvery)
	}
	if opts.JournalPath != "" {
		if err := c.openJournal(); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	c.loops.Add(2)
	go c.acceptLoop()
	go c.tickLoop()
	return c, nil
}

// ticksFor converts a wall duration to a whole number of ticks, at
// least 1.
func ticksFor(d, tick time.Duration) uint64 {
	n := uint64(d / tick)
	if n == 0 {
		n = 1
	}
	return n
}

// openJournal replays any pre-existing journal at JournalPath,
// restores quarantine and retry state from it, and opens it for
// appending.
func (c *Coordinator) openJournal() error {
	entries, err := fleet.ReplayJournal(c.opts.JournalPath)
	if err == nil && len(entries) > 0 {
		c.resumed = fleet.RecoverState(entries)
		// Probation restarts from tick 0: the old clock died with the
		// old process, and readmitting a known liar early is worse than
		// making it wait out a fresh window.
		c.quar.Restore(c.resumed.Quarantined, 0)
		c.stats.Quarantined = len(c.resumed.Quarantined)
	}
	j, err := fleet.OpenJournal(c.opts.JournalPath)
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	c.journal = j
	return nil
}

// journalLocked appends one entry (no-op without a journal); append
// failures are logged, not fatal — losing the journal degrades resume,
// not the sweep.
func (c *Coordinator) journalLocked(e fleet.Entry) {
	if c.journal == nil {
		return
	}
	e.Tick = c.tick
	if err := c.journal.Append(e); err != nil {
		c.log().Warn("fabric: journal append failed", "op", e.Op, "err", err.Error())
	}
}

// Addr returns the coordinator's bound listen address, for handing to
// workers (and for tests that listen on port 0).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down: the listener closes, every worker
// connection drops, and pending Submit calls fail with
// ErrCoordinatorClosed. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		_ = c.ln.Close()
		c.mu.Lock()
		workers := append([]*remoteWorker(nil), c.workers...)
		c.mu.Unlock()
		for _, w := range workers {
			c.workerGone(w, errors.New("coordinator closing"))
		}
	})
	c.loops.Wait()
	c.mu.Lock()
	j := c.journal
	c.journal = nil
	c.mu.Unlock()
	if j != nil {
		_ = j.Close()
	}
	return nil
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Resumed returns the scheduling state recovered from a pre-existing
// journal (nil on a cold start), for drivers and tests that want to
// know what carried across.
func (c *Coordinator) Resumed() *fleet.JournalState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// WorkerHealth is one worker's row in a fleet snapshot.
type WorkerHealth struct {
	Name     string `json:"name"`
	Proto    int    `json:"proto"`
	State    string `json:"state"`
	InFlight int    `json:"inflight"`
	Busy     int    `json:"busy"`
	RTTMicro int64  `json:"rtt_micros"`
	Strikes  int    `json:"strikes"`
}

// FleetSnapshot is the JSON shape the control plane serves for the
// fleet's health: per-worker state plus the quarantine roster and the
// coordinator counters.
type FleetSnapshot struct {
	Tick        uint64         `json:"tick"`
	Workers     []WorkerHealth `json:"workers"`
	Quarantined []string       `json:"quarantined"`
	Pending     int            `json:"pending"`
	Fallback    bool           `json:"fallback"`
	Stats       Stats          `json:"stats"`
}

// FleetStats captures the fleet's health under the coordinator mutex.
func (c *Coordinator) FleetStats() FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := FleetSnapshot{
		Tick:        c.tick,
		Quarantined: c.quar.Snapshot(),
		Pending:     len(c.pending),
		Fallback:    c.fallback,
		Stats:       c.stats,
	}
	sort.Strings(snap.Quarantined)
	for _, w := range c.workers {
		snap.Workers = append(snap.Workers, WorkerHealth{
			Name:     w.name,
			Proto:    w.proto,
			State:    c.healthStateLocked(w).String(),
			InFlight: len(w.inflight),
			Busy:     w.busy,
			RTTMicro: w.rtt,
			Strikes:  c.quar.Strikes(w.name),
		})
	}
	return snap
}

// FleetStatsJSON renders FleetStats as JSON — the decoupled shape the
// control plane's /api/v1/fleet endpoint serves (ctrl.FleetSource).
func (c *Coordinator) FleetStatsJSON() json.RawMessage {
	b, err := json.Marshal(c.FleetStats())
	if err != nil {
		return json.RawMessage(`{"error":"fleet snapshot marshal failed"}`)
	}
	return b
}

// healthStateLocked classifies w at the current tick; workers outside
// the heartbeat protocol are always healthy.
func (c *Coordinator) healthStateLocked(w *remoteWorker) fleet.HealthState {
	if w.proto < 2 || c.opts.Heartbeat < 0 {
		return fleet.Healthy
	}
	return c.health.State(w.name, c.tick)
}

// ObsSnapshot captures the coordinator's fabric telemetry (nil when no
// Obs registry was configured). The snapshot is taken under the
// coordinator mutex, the same lock every telemetry update holds, so it
// is consistent and safe to call from serving goroutines.
func (c *Coordinator) ObsSnapshot() *obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Obs.Snapshot()
}

// WaitWorkers blocks until at least n workers are connected, ctx
// cancels, or the coordinator closes.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		have := c.stats.Workers
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: waiting for %d workers (have %d): %w", n, have, ctx.Err())
		case <-c.closed:
			return ErrCoordinatorClosed
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Submit resolves one granule: an existing result (or in-flight
// computation) under the same key is shared single-flight, otherwise
// the granule is queued for dispatch. Blocks until the granule
// resolves, ctx cancels, or the coordinator closes. Remote failures
// come back as *fleet.RemoteError carrying the worker-side error text
// verbatim — a sharded run's error cells match a serial run's
// byte-for-byte — plus the transience classification for retry-aware
// callers.
func (c *Coordinator) Submit(ctx context.Context, kind, key string, spec json.RawMessage) (json.RawMessage, error) {
	c.mu.Lock()
	g, ok := c.byKey[key]
	if !ok {
		g = &granule{
			id:       c.nextID,
			kind:     kind,
			key:      key,
			spec:     spec,
			done:     make(chan struct{}),
			issuedTo: make(map[string]bool),
		}
		c.nextID++
		if k := c.opts.ValidateEvery; k > 0 && g.id%uint64(k) == 0 {
			g.votesWanted = 2
		}
		if c.resumed != nil {
			// Carry the retry charges a predecessor coordinator already
			// spent on this granule.
			g.retries = c.resumed.Retries[fleet.GranuleKey(kind, key)]
		}
		c.byKey[key] = g
		c.byID[g.id] = g
		c.order = append(c.order, g)
		c.stats.Submitted++
		c.tel.Submitted()
		c.journalLocked(fleet.Entry{Op: fleet.OpSubmit, Kind: kind, Key: key})
		c.enqueueLocked(g)
		c.dispatchLocked()
	}
	c.mu.Unlock()

	select {
	case <-g.done:
		if g.errText != "" {
			return nil, &fleet.RemoteError{Text: g.errText, Transient: g.transient}
		}
		return g.value, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, ErrCoordinatorClosed
	}
}

// enqueueLocked inserts g into the pending queue keeping ascending-id
// order, so re-queued granules rejoin at their original priority.
func (c *Coordinator) enqueueLocked(g *granule) {
	g.queued = true
	i := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].id > g.id })
	c.pending = append(c.pending, nil)
	copy(c.pending[i+1:], c.pending[i:])
	c.pending[i] = g
}

// popReadyLocked removes and returns the lowest-id pending granule that
// is ready (past its backoff) and issuable to w (not already held by
// it). Resolved granules encountered on the way are dropped. Returns
// nil when nothing qualifies. A nil w (the fallback drain) ignores both
// the holder check and backoff — in-process execution is the last
// resort and waiting out a remote-flakiness backoff would be pointless.
func (c *Coordinator) popReadyLocked(w *remoteWorker) *granule {
	for i := 0; i < len(c.pending); {
		g := c.pending[i]
		if g.resolved() {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			g.queued = false
			continue
		}
		if w != nil {
			if g.readyTick > c.tick {
				i++
				continue
			}
			if _, held := w.inflight[g.id]; held {
				i++
				continue
			}
			if g.votesWanted > 1 && g.voted(w.name) {
				// A re-queued cross-validated granule must not go back to
				// a worker whose vote is already in; re-executing there
				// cannot advance the election.
				i++
				continue
			}
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		g.queued = false
		return g
	}
	return nil
}

// dispatchLocked hands pending granules to workers with free budget,
// lowest id first, walking workers in join order.
func (c *Coordinator) dispatchLocked() {
	for _, w := range c.workers {
		for !w.dead && len(w.inflight) < c.opts.InFlight {
			g := c.popReadyLocked(w)
			if g == nil {
				break
			}
			c.issueLocked(w, g)
		}
	}
	c.tel.SyncQueue(c.workers, len(c.pending))
}

// issueLocked sends g to w and records the holding.
func (c *Coordinator) issueLocked(w *remoteWorker, g *granule) {
	w.inflight[g.id] = g
	g.holders++
	g.issuedAt = time.Now()
	g.issuedTick = c.tick
	g.issuedTo[w.name] = true
	c.journalLocked(fleet.Entry{Op: fleet.OpIssue, Kind: g.kind, Key: g.key, Worker: w.name})
	c.sendLocked(w, Msg{Type: MsgWork, ID: g.id, Kind: g.kind, Key: g.key, Spec: g.spec})
}

// sendLocked enqueues m on w's outbox. A full outbox means the worker
// stopped draining its socket; it is dropped like a dead one (from a
// fresh goroutine — workerGone retakes the mutex).
func (c *Coordinator) sendLocked(w *remoteWorker, m Msg) {
	if w.dead {
		return
	}
	select {
	case w.outbox <- m:
	default:
		go c.workerGone(w, errors.New("outbox overflow: worker not draining its connection"))
	}
}

// acceptLoop admits worker connections until the listener closes.
func (c *Coordinator) acceptLoop() {
	defer c.loops.Done()
	for {
		//lint:ignore ctxflow Close() closes the listener, which fails this Accept
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed (Close) or terminally broken
		}
		go c.serveConn(conn)
	}
}

// serveConn runs the handshake and then the read loop for one worker
// connection. Any protocol violation or read error drops the worker.
func (c *Coordinator) serveConn(conn net.Conn) {
	hello, err := ReadFrame(conn)
	if err != nil || hello.Type != MsgHello {
		c.log().Warn("fabric: rejecting connection: bad handshake",
			"remote", fmt.Sprint(conn.RemoteAddr()), "err", fmt.Sprint(err))
		_ = conn.Close()
		return
	}
	if hello.Proto < MinProtoVersion || hello.Proto > ProtoVersion {
		c.log().Warn("fabric: rejecting worker: protocol mismatch",
			"worker", hello.Worker, "proto", hello.Proto,
			"accept_min", MinProtoVersion, "accept_max", ProtoVersion)
		_ = conn.Close()
		return
	}

	w := &remoteWorker{
		name:     hello.Worker,
		conn:     conn,
		proto:    hello.Proto,
		slots:    hello.Slots,
		inflight: make(map[uint64]*granule),
		outbox:   make(chan Msg, 4*c.opts.InFlight+16),
	}
	pingMS := int64(0)
	if w.proto >= 2 && c.opts.Heartbeat > 0 {
		pingMS = c.opts.Heartbeat.Milliseconds()
		if pingMS <= 0 {
			pingMS = 1
		}
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		_ = conn.Close()
		return
	default:
	}
	admitted, readmitted := c.quar.Admit(w.name, c.tick)
	if !admitted {
		strikes := c.quar.Strikes(w.name)
		c.mu.Unlock()
		c.log().Warn("fabric: refusing quarantined worker",
			"worker", w.name, "strikes", strikes)
		_ = conn.Close()
		return
	}
	if readmitted {
		c.stats.Readmitted++
		c.tel.Readmitted()
		c.journalLocked(fleet.Entry{Op: fleet.OpReadmit, Worker: w.name})
	}
	c.workers = append(c.workers, w)
	c.stats.Workers++
	c.stats.Joined++
	c.tel.Joined()
	c.health.Observe(w.name, c.tick)
	c.journalLocked(fleet.Entry{Op: fleet.OpJoin, Worker: w.name})
	go c.writeLoop(w)
	c.sendLocked(w, Msg{Type: MsgWelcome, Proto: w.proto, PingMS: pingMS})
	c.dispatchLocked()
	c.mu.Unlock()
	c.log().Info("fabric: worker joined",
		"worker", w.name, "proto", w.proto, "slots", w.slots,
		"remote", fmt.Sprint(conn.RemoteAddr()))

	for {
		//lint:ignore ctxflow Close() and workerGone close the conn, which fails this read
		m, err := ReadFrame(conn)
		if err != nil {
			c.workerGone(w, err)
			return
		}
		switch m.Type {
		case MsgResult:
			c.handleResult(w, m)
		case MsgCacheGet:
			c.handleCacheGet(w, m)
		case MsgPing:
			c.handlePing(w, m)
		default:
			c.workerGone(w, fmt.Errorf("unexpected %q frame from worker", m.Type))
			return
		}
	}
}

// writeLoop drains w's outbox onto the wire; a write failure drops the
// worker.
func (c *Coordinator) writeLoop(w *remoteWorker) {
	for m := range w.outbox {
		if err := WriteFrame(w.conn, m); err != nil {
			c.workerGone(w, err)
			return
		}
	}
}

// handlePing refreshes w's liveness and telemetry and answers with a
// pong so the worker can detect a wedged session from its side.
func (c *Coordinator) handlePing(w *remoteWorker, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.health.Observe(w.name, c.tick)
	if w.suspect {
		w.suspect = false
		c.log().Info("fabric: suspect worker recovered", "worker", w.name)
	}
	w.busy = m.Busy
	w.rtt = m.RTT
	c.stats.Heartbeats++
	c.tel.Heartbeat()
	c.sendLocked(w, Msg{Type: MsgPong, ID: m.ID})
}

// handleResult resolves a granule from a worker result frame. Late
// duplicates (straggler re-issues, results racing a death notice) are
// ignored: the first result wins, and purity makes every duplicate
// identical anyway. Cross-validated granules collect votes instead;
// transient failures inside the retry budget go back on the queue with
// backoff rather than resolving.
func (c *Coordinator) handleResult(w *remoteWorker, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.health.Observe(w.name, c.tick)
	g, ok := c.byID[m.ID]
	if !ok {
		return
	}
	if _, held := w.inflight[g.id]; held {
		delete(w.inflight, g.id)
		g.holders--
	}
	if g.resolved() {
		c.tel.LateResult()
		c.dispatchLocked()
		return
	}
	if g.votesWanted > 1 {
		c.handleVoteLocked(w, g, m)
		return
	}
	if m.Error != "" && m.Transient && c.opts.RetryBudget > 0 && g.retries < c.opts.RetryBudget {
		c.retryLocked(g, m.Error)
		return
	}
	c.resolveLocked(g, m.Value, m.Error, m.Transient)
}

// retryLocked charges one transient failure against g's budget and
// re-queues it behind the policy's seeded backoff.
func (c *Coordinator) retryLocked(g *granule, cause string) {
	g.retries++
	g.readyTick = c.tick + ticksFor(c.retry.Delay(g.retries-1), c.opts.TickEvery)
	c.stats.Retried++
	c.tel.Retried()
	c.journalLocked(fleet.Entry{
		Op: fleet.OpRequeue, Kind: g.kind, Key: g.key,
		Retries: g.retries, Detail: "transient: " + cause,
	})
	if !g.queued && g.holders == 0 {
		c.enqueueLocked(g)
	}
	c.log().Warn("fabric: transient granule failure, retrying",
		"granule", g.id, "kind", g.kind, "retry", g.retries, "cause", cause)
	c.dispatchLocked()
}

// resolveLocked closes g with its result, frees it from every holder,
// and re-dispatches.
func (c *Coordinator) resolveLocked(g *granule, value json.RawMessage, errText string, transient bool) {
	g.value = value
	g.errText = errText
	g.transient = transient
	close(g.done)
	c.stats.Completed++
	c.tel.Completed(time.Since(g.issuedAt))
	c.journalLocked(fleet.Entry{Op: fleet.OpComplete, Kind: g.kind, Key: g.key})
	for _, w := range c.workers {
		if _, held := w.inflight[g.id]; held {
			delete(w.inflight, g.id)
			g.holders--
		}
	}
	c.dispatchLocked()
}

// handleVoteLocked records one answer to a cross-validated granule and
// decides it once enough votes are in (or no further voter exists).
func (c *Coordinator) handleVoteLocked(w *remoteWorker, g *granule, m Msg) {
	if !g.voted(w.name) {
		g.votes = append(g.votes, vote{
			worker: w.name, value: m.Value, errText: m.Error, transient: m.Transient,
		})
	}
	// Divergence between the first two answers escalates to a third
	// opinion before anyone is accused or anything is decided — this
	// must run before the quorum check, or a 1-vs-1 split would be
	// settled by "accept the first answer" and a lie could win.
	if len(g.votes) == 2 && g.votes[0].digest() != g.votes[1].digest() && g.votesWanted < 3 {
		g.votesWanted = 3
		c.stats.Divergent++
		c.tel.Divergent()
		c.log().Warn("fabric: cross-validation divergence, escalating to a third worker",
			"granule", g.id, "kind", g.kind,
			"voters", g.votes[0].worker+","+g.votes[1].worker)
	}
	if len(g.votes) >= g.votesWanted {
		c.decideVotesLocked(g)
		return
	}
	// If no one is left to produce another vote — no live worker that
	// has not already answered and no copy still in flight — decide
	// with what we have rather than hang the sweep.
	if g.holders == 0 && !c.eligibleVoterExistsLocked(g) {
		c.decideVotesLocked(g)
		return
	}
	c.dispatchLocked()
}

// eligibleVoterExistsLocked reports whether a live worker could still
// contribute a fresh vote for g.
func (c *Coordinator) eligibleVoterExistsLocked(g *granule) bool {
	for _, w := range c.workers {
		if !w.dead && !g.voted(w.name) {
			return true
		}
	}
	return false
}

// decideVotesLocked settles a cross-validated granule: the largest
// group of byte-identical answers wins, and when a majority exists
// every worker outside it is quarantined — a pure function returned a
// different answer, so the outlier lied (or its link corrupted results
// systematically, which deserves the same treatment).
func (c *Coordinator) decideVotesLocked(g *granule) {
	if len(g.votes) == 0 {
		// Every voter died before answering; back on the queue.
		if !g.queued && g.holders == 0 {
			c.enqueueLocked(g)
			c.dispatchLocked()
		}
		return
	}
	groups := make(map[string]int)
	for _, v := range g.votes {
		groups[v.digest()]++
	}
	winner := g.votes[0]
	best := 0
	for _, v := range g.votes {
		if n := groups[v.digest()]; n > best {
			best = n
			winner = v
		}
	}
	c.stats.Validated++
	c.tel.Validated()
	if len(groups) > 1 && best >= 2 {
		for _, v := range g.votes {
			if v.digest() == winner.digest() {
				continue
			}
			c.quarantineLocked(v.worker, fmt.Sprintf("divergent answer on granule %d (%s)", g.id, g.kind))
		}
	} else if len(groups) > 1 {
		// Every answer differs: no majority to trust, nobody can be
		// blamed. Take the first answer and say so loudly.
		c.log().Warn("fabric: cross-validation inconclusive, accepting first answer",
			"granule", g.id, "kind", g.kind, "answers", len(groups))
	}
	c.resolveLocked(g, winner.value, winner.errText, winner.transient)
}

// quarantineLocked trips the breaker for the named worker: journals the
// decision, blocks future handshakes for the probation window, and
// drops the live session if one exists.
func (c *Coordinator) quarantineLocked(name, reason string) {
	if !c.quar.QuarantineNow(name, c.tick) {
		return
	}
	c.stats.Quarantined++
	c.tel.Quarantined()
	c.journalLocked(fleet.Entry{Op: fleet.OpQuarantine, Worker: name, Detail: reason})
	c.log().Warn("fabric: worker quarantined", "worker", name, "reason", reason)
	for _, w := range c.workers {
		if w.name == name && !w.dead {
			go c.workerGone(w, fmt.Errorf("quarantined: %s", reason))
		}
	}
}

// strikeLocked charges one fault and quarantines on the tripping
// strike.
func (c *Coordinator) strikeLocked(name, reason string) {
	if c.quar.Strike(name, c.tick) {
		c.stats.Quarantined++
		c.tel.Quarantined()
		c.journalLocked(fleet.Entry{Op: fleet.OpQuarantine, Worker: name, Detail: reason})
		c.log().Warn("fabric: worker quarantined", "worker", name, "reason", reason)
		for _, w := range c.workers {
			if w.name == name && !w.dead {
				go c.workerGone(w, fmt.Errorf("quarantined: %s", reason))
			}
		}
	}
}

// handleCacheGet answers a worker's probe of the shared result cache:
// the coordinator's resolved granules ARE the cache (they are what the
// driver's content-keyed memos produced and consumed).
func (c *Coordinator) handleCacheGet(w *remoteWorker, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.health.Observe(w.name, c.tick)
	reply := Msg{Type: MsgCacheValue, ID: m.ID}
	if g, ok := c.byKey[m.Key]; ok && g.resolved() {
		reply.Found = true
		reply.Value = g.value
		reply.Error = g.errText
		reply.Transient = g.transient
		c.stats.CacheHits++
	}
	c.tel.CacheProbe(reply.Found)
	c.sendLocked(w, reply)
}

// workerGone removes a dead worker: closes its connection and outbox,
// re-queues every granule it alone held, and re-dispatches. Idempotent.
func (c *Coordinator) workerGone(w *remoteWorker, cause error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	close(w.outbox)
	_ = w.conn.Close()
	for i, ww := range c.workers {
		if ww == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.stats.Workers--
	c.health.Forget(w.name)
	c.journalLocked(fleet.Entry{Op: fleet.OpGone, Worker: w.name, Detail: cause.Error()})
	ids := make([]uint64, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	requeued := 0
	for _, id := range ids {
		g := w.inflight[id]
		g.holders--
		if g.resolved() || g.holders > 0 || g.queued {
			continue
		}
		c.enqueueLocked(g)
		c.journalLocked(fleet.Entry{
			Op: fleet.OpRequeue, Kind: g.kind, Key: g.key,
			Retries: g.retries, Detail: "holder gone: " + w.name,
		})
		c.stats.Requeued++
		requeued++
	}
	w.inflight = nil
	c.tel.WorkerGone(w.name, requeued)
	c.dispatchLocked()
	c.mu.Unlock()
	c.log().Warn("fabric: worker gone",
		"worker", w.name, "cause", fmt.Sprint(cause), "requeued", requeued)
}

// tickLoop advances the coordinator's logical clock and runs every
// deadline-driven duty on it: heartbeat health classification,
// straggler re-issue, cross-validation copy placement, backoff expiry,
// and local-fallback engagement. One loop, one clock, so every deadline
// in the fleet is measured the same way.
func (c *Coordinator) tickLoop() {
	defer c.loops.Done()
	ticker := time.NewTicker(c.opts.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-ticker.C:
			c.onTick()
		}
	}
}

// onTick runs one logical-clock step.
func (c *Coordinator) onTick() {
	c.mu.Lock()
	c.tick++
	c.classifyHealthLocked()
	if c.straggleTicks > 0 {
		c.reissueStragglersLocked()
	}
	c.placeValidationCopiesLocked()
	// Backoffs expire on ticks; give newly ready granules a chance.
	c.dispatchLocked()
	c.considerFallbackLocked()
	c.mu.Unlock()
}

// classifyHealthLocked walks the fleet and acts on heartbeat silence:
// suspects get their sole-held granules proactively duplicated, the
// dead are evicted outright (and struck).
func (c *Coordinator) classifyHealthLocked() {
	if c.opts.Heartbeat <= 0 {
		return
	}
	for _, w := range c.workers {
		if w.dead || w.proto < 2 {
			continue
		}
		switch c.health.State(w.name, c.tick) {
		case fleet.Dead:
			go c.workerGone(w, fmt.Errorf("heartbeat: no frame for %d ticks", c.opts.Health.DeadAfter))
			c.strikeLocked(w.name, "heartbeat death")
		case fleet.Suspect:
			if w.suspect {
				continue
			}
			w.suspect = true
			c.stats.Suspects++
			c.tel.Suspect()
			c.log().Warn("fabric: worker suspect, duplicating its granules",
				"worker", w.name, "inflight", len(w.inflight))
			// Suspicion is a soft state: it hedges with duplicates but
			// does NOT strike — a worker saturated by a long granule on
			// a loaded host recovers on its next frame, and charging it
			// would eject healthy capacity (fatal when it is the fleet's
			// last worker). Strikes come from hard faults: eviction,
			// straggling, divergence.
			c.duplicateHoldingsLocked(w)
		}
	}
}

// duplicateHoldingsLocked issues copies of w's sole-held granules onto
// other live, healthy workers with free budget — the proactive arm of
// straggler re-issue, fired by suspicion instead of age.
func (c *Coordinator) duplicateHoldingsLocked(w *remoteWorker) {
	ids := make([]uint64, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		g := w.inflight[id]
		if g.resolved() || g.holders > 1 {
			continue
		}
		if t := c.idleTargetLocked(g); t != nil {
			c.issueLocked(t, g)
			c.stats.Duplicated++
			c.tel.Duplicated()
		}
	}
	c.tel.SyncQueue(c.workers, len(c.pending))
}

// idleTargetLocked finds a live, unsuspected worker with free budget
// that is not already holding g (and has not voted on it).
func (c *Coordinator) idleTargetLocked(g *granule) *remoteWorker {
	for _, w := range c.workers {
		if w.dead || w.suspect || len(w.inflight) >= c.opts.InFlight {
			continue
		}
		if _, held := w.inflight[g.id]; held {
			continue
		}
		if g.voted(w.name) {
			continue
		}
		return w
	}
	return nil
}

// reissueStragglersLocked walks granules in submission order and
// duplicates any aged one onto a worker with free budget that is not
// already holding it. The stale holder is struck: repeatedly sitting on
// granules past the straggle deadline is the timeout pattern the
// circuit breaker exists for.
func (c *Coordinator) reissueStragglersLocked() {
	for _, g := range c.order {
		if g.resolved() || g.queued || g.holders == 0 {
			continue
		}
		if c.tick-g.issuedTick < c.straggleTicks {
			continue
		}
		t := c.idleTargetLocked(g)
		if t == nil {
			continue
		}
		// Strike every stale holder before the re-issue bumps
		// issuedTick; holders are found by scanning the fleet.
		for _, w := range c.workers {
			if _, held := w.inflight[g.id]; held {
				c.strikeLocked(w.name, "straggling granule re-issued")
			}
		}
		c.issueLocked(t, g)
		c.stats.Duplicated++
		c.tel.Duplicated()
		c.tel.SyncQueue(c.workers, len(c.pending))
		c.log().Info("fabric: straggler duplicated",
			"granule", g.id, "kind", g.kind, "worker", t.name)
	}
}

// placeValidationCopiesLocked issues the redundant copies that
// cross-validated granules still need, one eligible worker at a time.
func (c *Coordinator) placeValidationCopiesLocked() {
	if c.opts.ValidateEvery <= 0 {
		return
	}
	for _, g := range c.order {
		if g.resolved() || g.votesWanted <= 1 {
			continue
		}
		// Useful copies are votes already cast plus copies live workers
		// still hold. issuedTo would over-count: an issue to a worker
		// that has since died (or been quarantined mid-validation) will
		// never become a vote, and counting it parks the granule forever.
		for len(g.votes)+g.holders < g.votesWanted {
			t := c.validationTargetLocked(g)
			if t == nil {
				// No fresh voter exists. If no copy is in flight either,
				// the electorate is exhausted: decide with the votes in
				// hand rather than hang the sweep.
				if g.holders == 0 && len(g.votes) > 0 && !c.eligibleVoterExistsLocked(g) {
					c.decideVotesLocked(g)
				}
				break
			}
			c.issueLocked(t, g)
		}
	}
}

// validationTargetLocked finds a live worker with free budget that has
// never been issued g and has not voted on it.
func (c *Coordinator) validationTargetLocked(g *granule) *remoteWorker {
	for _, w := range c.workers {
		if w.dead || len(w.inflight) >= c.opts.InFlight {
			continue
		}
		if g.issuedTo[w.name] || g.voted(w.name) {
			continue
		}
		return w
	}
	return nil
}

// considerFallbackLocked engages the in-process drain when the fleet
// has been gone with work pending for LocalFallbackAfter.
func (c *Coordinator) considerFallbackLocked() {
	if c.fallbackTicks == 0 || c.fallback {
		return
	}
	if c.stats.Workers > 0 || len(c.pending) == 0 {
		c.idle = 0
		return
	}
	c.idle++
	if c.idle < c.fallbackTicks {
		return
	}
	c.fallback = true
	c.journalLocked(fleet.Entry{Op: fleet.OpFallback, Detail: "no workers, executing in-process"})
	c.log().Warn("fabric: no workers, degrading to in-process execution",
		"pending", len(c.pending))
	c.loops.Add(1)
	go c.fallbackDrain()
}

// fallbackDrain executes pending granules in-process, in id order,
// until the queue empties or a worker joins (the fleet takes back
// over). Runs the same registered executors the workers run, so values
// are bit-identical to remote execution.
func (c *Coordinator) fallbackDrain() {
	defer c.loops.Done()
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		c.mu.Lock()
		if c.stats.Workers > 0 {
			c.fallback = false
			c.idle = 0
			c.mu.Unlock()
			return
		}
		g := c.popReadyLocked(nil)
		if g == nil {
			c.fallback = false
			c.idle = 0
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		var value json.RawMessage
		exec, err := lookupKind(g.kind)
		if err == nil {
			//lint:ignore ctxflow the coordinator owns this drain goroutine; Close() resolves pending granules, which ends the loop between executions
			value, err = runExecutor(context.Background(), exec, Msg{Kind: g.kind, Spec: g.spec})
		}
		c.mu.Lock()
		c.stats.FallbackExecs++
		c.tel.Fallback()
		if g.resolved() {
			c.tel.LateResult()
			c.mu.Unlock()
			continue
		}
		if err != nil {
			c.resolveLocked(g, nil, err.Error(), fleet.IsTransient(err))
		} else {
			c.resolveLocked(g, value, "", false)
		}
		c.mu.Unlock()
	}
}

// log returns the coordinator's structured logger (discard when none
// was configured).
func (c *Coordinator) log() *slog.Logger {
	return cliutil.LoggerOrDiscard(c.opts.Log)
}
