package sim

import (
	"time"

	"lpm/internal/stats"
)

// Tick shows that time's types and constants stay legal: only the
// wall-clock entry points are nondeterministic.
const Tick = 10 * time.Millisecond

// Seeded draws from the sanctioned RNG: explicit seed, no finding.
func Seeded(seed uint64) float64 {
	r := stats.NewRNG(seed)
	return r.Float64()
}
