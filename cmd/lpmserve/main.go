// Command lpmserve is the fleet control plane: a long-lived service
// owning a registry of concurrent simulation runs. Clients submit,
// list, inspect and cancel runs over the versioned lpm-ctrl/v1 JSON
// API, stream each run's timeline windows over SSE as they close, and
// scrape one fleet-wide Prometheus endpoint carrying every run's
// observability snapshot plus — when sharding is on — the sweep-fabric
// coordinator's telemetry.
//
// Usage:
//
//	lpmserve -addr localhost:9090
//	lpmserve -addr :9090 -tenant-budget 1 -max-concurrent 4
//	lpmserve -addr :9090 -shard 127.0.0.1:0 -log json
//
//	curl -d '{"workload":"403.gcc","tenant":"acme"}' http://localhost:9090/api/v1/runs
//	curl -N http://localhost:9090/api/v1/runs/r-1/events
//	curl http://localhost:9090/metrics
//
// Runs execute on the in-process simulator under internal/parallel's
// worker budget; with -shard the server also hosts a sweep-fabric
// coordinator so lpmworker processes can contribute capacity, and the
// fabric's queue/straggler/cache telemetry joins the fleet scrape.
// SIGINT/SIGTERM drain in-flight requests and running simulations for
// -grace before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/ctrl"
	"lpm/internal/fabric"
	"lpm/internal/obs"
	"lpm/internal/parallel"
	"lpm/internal/resilience"

	// Fabric granule executors, so a -shard lpmserve can coordinate
	// the same kinds the batch CLIs do.
	_ "lpm/internal/explore"
	_ "lpm/internal/sched"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "localhost:9090", "control-plane listen address")
		budget  = fs.Int("tenant-budget", 0, "max concurrently running runs per tenant (0 = default 2)")
		maxRuns = fs.Int("max-concurrent", 0, "max concurrently running runs across all tenants (0 = worker budget)")
		workers = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		grace   = fs.Duration("grace", 10*time.Second, "drain window for in-flight requests and runs on shutdown")
		logFmt  = fs.String("log", "text", "log format on stderr: text or json")
	)
	shard := fabric.BindShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A control plane must come up serving even before any worker has
	// joined; only an explicit -shard-min should gate startup.
	minSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "shard-min" {
			minSet = true
		}
	})
	if !minSet {
		shard.Min = 0
	}
	parallel.SetWorkers(*workers)
	log := cliutil.NewLogger(stderr, *logFmt)

	var fabricObs *obs.Registry
	if shard.Addr != "" {
		fabricObs = obs.NewRegistry()
	}
	stopShard, coord, err := shard.Start(ctx, log, fabricObs)
	if err != nil {
		return err
	}
	defer stopShard()

	cfg := ctrl.Config{
		MaxConcurrent: *maxRuns,
		TenantBudget:  *budget,
		Log:           log,
	}
	if coord != nil {
		cfg.Fabric = coord
	}
	reg := ctrl.NewRegistry(ctx, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	_, _ = fmt.Fprintf(stdout, "lpmserve %s on http://%s\n", ctrl.APIVersion, ln.Addr())
	log.Info("ctrl: control plane listening", "addr", fmt.Sprint(ln.Addr()))

	srv := &http.Server{Handler: ctrl.NewAPIMux(reg)}
	if err := resilience.ServeHTTP(ctx, srv, ln, *grace); err != nil {
		return err
	}
	// The serve context is down; running simulations saw the same
	// cancellation and drain to cancelled states.
	reg.Drain()
	log.Info("ctrl: control plane stopped")
	return nil
}
