package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(1234)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) fraction %.4f", frac)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const p = 0.25
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("geometric mean %.3f, want ~%.3f", mean, want)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(13)
	const n = 50000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		v := r.Zipf(100, 1.2)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestRNGZipfDegenerate(t *testing.T) {
	r := NewRNG(17)
	if v := r.Zipf(1, 1.5); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
	if v := r.Zipf(0, 1.5); v != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", v)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := make([]int, 16)
	r.Perm(p)
	seen := make([]bool, 16)
	for _, v := range p {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRunningBasics(t *testing.T) {
	var s Running
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-1.25) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
}

func TestRunningEmpty(t *testing.T) {
	var s Running
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("zero-value Running not zero")
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Running
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		if len(xs) > 0 {
			mean := sum / float64(len(xs))
			scale := math.Max(1, math.Abs(mean))
			ok = math.Abs(s.Mean()-mean)/scale < 1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(11) // overflow
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Fatalf("bucket %d = %d", i, h.Count(i))
		}
	}
}

func TestHistogramUpperEdge(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just below hi
	if h.Count(2) != 1 {
		t.Fatal("upper edge fell out of last bucket")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	if q := h.Quantile(0); q > 5 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 95 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestHarmonicMean(t *testing.T) {
	got := HarmonicMean([]float64{1, 1, 1})
	if got != 1 {
		t.Fatalf("hm = %v", got)
	}
	got = HarmonicMean([]float64{2, 2})
	if got != 2 {
		t.Fatalf("hm = %v", got)
	}
	got = HarmonicMean([]float64{1, 3})
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("hm = %v", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("hm(nil) != 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("hm with zero entry should be 0")
	}
}

func TestHarmonicLEGeometricLEArithmetic(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		am := sum / float64(len(xs))
		gm := GeometricMean(xs)
		hm := HarmonicMean(xs)
		const eps = 1e-9
		return hm <= gm*(1+eps) && gm <= am*(1+eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHspIdentity(t *testing.T) {
	// When shared == alone, every weighted speedup is 1, so Hsp is 1.
	ipc := []float64{0.5, 1.2, 0.8, 2.0}
	if got := Hsp(ipc, ipc); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Hsp identity = %v", got)
	}
}

func TestHspBounds(t *testing.T) {
	shared := []float64{0.4, 0.9}
	alone := []float64{0.8, 1.0}
	h := Hsp(shared, alone)
	// Hsp must lie between the min and max weighted speedups.
	if h < 0.5 || h > 0.9 {
		t.Fatalf("Hsp = %v out of [0.5, 0.9]", h)
	}
}

func TestHspPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hsp([]float64{1}, []float64{1, 2})
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Median must not modify its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("Median modified input")
	}
}

func TestWeightedSpeedupZeroAlone(t *testing.T) {
	ws := WeightedSpeedup([]float64{1}, []float64{0})
	if ws[0] != 0 {
		t.Fatalf("ws = %v", ws)
	}
}
