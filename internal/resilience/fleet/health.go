package fleet

// Heartbeat health classification. The coordinator advances a logical
// tick counter on its own cadence and records the tick at which each
// worker last proved liveness (any frame counts; ping frames exist so
// an idle worker still proves it). Classification is then a pure
// function of (lastSeen, now, policy) — no wall-clock reads — which
// keeps the chaos suite's hung-TCP scenarios replayable.

// HealthState is a worker's liveness classification.
type HealthState int

const (
	// Healthy workers have been heard from within SuspectAfter ticks.
	Healthy HealthState = iota
	// Suspect workers have gone quiet past SuspectAfter but not yet
	// DeadAfter ticks: their granules are proactively duplicated
	// elsewhere, but the connection is kept in case they wake up.
	Suspect
	// Dead workers passed DeadAfter ticks of silence: the session is
	// torn down and their granules re-queued outright.
	Dead
)

// String names the state for logs and metrics.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// HealthPolicy sets the classification deadlines in coordinator ticks.
type HealthPolicy struct {
	// SuspectAfter is the silent-tick count after which a worker turns
	// Suspect. Zero or negative disables classification (always Healthy).
	SuspectAfter uint64
	// DeadAfter is the silent-tick count after which a worker is Dead.
	// Must exceed SuspectAfter to give the suspect window meaning.
	DeadAfter uint64
}

// DefaultHealthPolicy: suspect after 8 silent ticks, dead after 24. At
// the coordinator's default 25ms tick that is 200ms to suspicion and
// 600ms to eviction — several missed heartbeats each, so one delayed
// ping never trips it.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{SuspectAfter: 8, DeadAfter: 24}
}

// Classify returns the state of a worker last heard from at lastSeen
// when the clock reads now. Pure: same inputs, same answer.
func (p HealthPolicy) Classify(lastSeen, now uint64) HealthState {
	if p.SuspectAfter == 0 || now <= lastSeen {
		return Healthy
	}
	silent := now - lastSeen
	if p.DeadAfter > p.SuspectAfter && silent >= p.DeadAfter {
		return Dead
	}
	if silent >= p.SuspectAfter {
		return Suspect
	}
	return Healthy
}

// HealthTracker maps worker names to their last-seen tick. It holds no
// lock of its own: the coordinator mutates it under its own mutex, the
// same way it guards the rest of the scheduling state.
type HealthTracker struct {
	policy   HealthPolicy
	lastSeen map[string]uint64
}

// NewHealthTracker returns a tracker classifying with the given policy.
func NewHealthTracker(policy HealthPolicy) *HealthTracker {
	return &HealthTracker{policy: policy, lastSeen: make(map[string]uint64)}
}

// Observe records proof of liveness from the named worker at tick now.
func (h *HealthTracker) Observe(name string, now uint64) {
	if h == nil {
		return
	}
	h.lastSeen[name] = now
}

// Forget drops a worker (on disconnect) so a later rejoin starts fresh.
func (h *HealthTracker) Forget(name string) {
	if h == nil {
		return
	}
	delete(h.lastSeen, name)
}

// State classifies the named worker at tick now. Workers never observed
// are Healthy — the dial handshake is their first proof of life.
func (h *HealthTracker) State(name string, now uint64) HealthState {
	if h == nil {
		return Healthy
	}
	last, ok := h.lastSeen[name]
	if !ok {
		return Healthy
	}
	return h.policy.Classify(last, now)
}
