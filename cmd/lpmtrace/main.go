// Command lpmtrace records, inspects and replays instruction traces in
// the repository's binary trace format.
//
// Usage:
//
//	lpmtrace -record gcc.trc -workload 403.gcc -n 100000   # record
//	lpmtrace -stat gcc.trc                                 # inspect
//	lpmtrace -replay gcc.trc -instructions 50000           # simulate
//	lpmtrace -replay gcc.trc -events out.json              # + event trace
//
// With -events, the replay emits a Chrome-trace-format JSON file of
// every memory-request lifecycle (L1/L2 hits and misses, DRAM reads and
// writes) loadable in chrome://tracing or Perfetto; a path ending in
// .jsonl selects the line-delimited form instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lpm/internal/cliutil"
	"lpm/internal/obs"
	"lpm/internal/resilience"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record   = fs.String("record", "", "record a trace to this file")
		stat     = fs.String("stat", "", "print statistics of this trace file")
		replay   = fs.String("replay", "", "simulate this trace file on a single-core chip")
		workload = fs.String("workload", "403.gcc", "built-in workload to record")
		n        = fs.Int("n", 100000, "instructions to record")
		instr    = fs.Uint64("instructions", 50000, "instructions to simulate on replay")
		events   = fs.String("events", "", "on replay, write memory-request lifecycle events to this file (Chrome trace JSON; .jsonl for line-delimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *record != "":
		return doRecord(stdout, *record, *workload, *n)
	case *stat != "":
		return doStat(stdout, *stat)
	case *replay != "":
		return doReplay(ctx, stdout, *replay, *instr, *events)
	default:
		fs.Usage()
		return flag.ErrHelp
	}
}

func doRecord(w io.Writer, path, workload string, n int) error {
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return err
	}
	f, err := cliutil.NewAtomicFile(path, 0o644)
	if err != nil {
		return err
	}
	if err := trace.Record(f, trace.NewSynthetic(prof), n); err != nil {
		f.Abort() // the record error is the interesting one
		return err
	}
	size := f.Size()
	// Commit fsyncs and renames: a recording whose final buffers never
	// hit the disk is worse than an error.
	if err := f.Commit(); err != nil {
		return err
	}
	p := cliutil.NewPrinter(w)
	p.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
		n, workload, path, size, float64(size)/float64(n))
	return p.Err()
}

func doStat(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f)
	if err != nil {
		return err
	}
	var loads, stores, compute, deps uint64
	for i := 0; i < rp.Len(); i++ {
		in := rp.Next()
		switch in.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		default:
			compute++
		}
		if in.Dep != 0 {
			deps++
		}
	}
	total := uint64(rp.Len())
	p := cliutil.NewPrinter(w)
	p.Printf("trace      %s (%q)\n", path, rp.Name())
	p.Printf("instrs     %d\n", total)
	p.Printf("loads      %d (%.1f%%)\n", loads, 100*float64(loads)/float64(total))
	p.Printf("stores     %d (%.1f%%)\n", stores, 100*float64(stores)/float64(total))
	p.Printf("compute    %d (%.1f%%)\n", compute, 100*float64(compute)/float64(total))
	p.Printf("dependent  %d (%.1f%%)\n", deps, 100*float64(deps)/float64(total))
	return p.Err()
}

func doReplay(ctx context.Context, w io.Writer, path string, instr uint64, events string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f)
	if err != nil {
		return err
	}
	cfg := chip.SingleCore("403.gcc") // geometry only; the workload is the trace
	cfg.Name = "replay-" + rp.Name()
	cfg.Cores[0].Workload = rp
	ch := chip.New(cfg)
	ch.SetContext(ctx)
	var tr *obs.Tracer
	if events != "" {
		tr = obs.NewTracer()
		ch.AttachTracer(tr)
	}
	cycles, done := ch.Run(instr, instr*2000)
	if err := ch.Err(); err != nil {
		return fmt.Errorf("replay interrupted at cycle %d: %w", ch.Now(), err)
	}
	r := ch.Snapshot()
	p := cliutil.NewPrinter(w)
	p.Printf("replayed %q: %d instructions in %d cycles (IPC %.3f, complete=%v)\n",
		rp.Name(), r.Cores[0].CPU.Instructions, cycles, r.Cores[0].CPU.IPC(), done)
	p.Printf("L1: %s\n", r.Cores[0].L1)
	p.Printf("L2: %s\n", r.L2)
	if tr != nil {
		out, err := cliutil.NewAtomicFile(events, 0o644)
		if err != nil {
			return err
		}
		if strings.HasSuffix(events, ".jsonl") {
			err = tr.WriteJSONL(out)
		} else {
			err = tr.WriteChromeTrace(out)
		}
		if err != nil {
			out.Abort() // the write error is the interesting one
			return err
		}
		// Commit fsyncs and renames: the trace file must be fully
		// flushed before we report success.
		if err := out.Commit(); err != nil {
			return err
		}
		p.Printf("events: %d spans (%d dropped) -> %s\n", tr.Len(), tr.Dropped(), events)
	}
	return p.Err()
}
