package resilience

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeHTTPGracefulShutdown pins the serve lifecycle: requests work
// while the context lives, cancellation drains in-flight handlers
// within the grace window, and the call returns nil on that clean path.
func TestServeHTTPGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(slow)
		// Finish only when the serve context cancels — an in-flight
		// request the grace window must cover.
		<-r.Context().Done()
		_, _ = io.WriteString(w, "drained")
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ServeHTTP(ctx, &http.Server{Handler: mux}, ln, 5*time.Second)
	}()

	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/ok")
	if err != nil {
		t.Fatalf("GET /ok: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("GET /ok body %q", body)
	}

	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			slowDone <- "error: " + err.Error()
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		slowDone <- string(b)
	}()
	<-slow
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeHTTP: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeHTTP did not return after cancellation")
	}
	select {
	case got := <-slowDone:
		if got != "drained" {
			t.Fatalf("in-flight request: %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeHTTPServeError surfaces a listener failure as the returned
// error rather than a hang.
func TestServeHTTPServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_ = ln.Close() // serve on a dead listener fails immediately
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ServeHTTP(ctx, &http.Server{}, ln, time.Second); err == nil {
		t.Fatal("dead listener did not error")
	}
}
