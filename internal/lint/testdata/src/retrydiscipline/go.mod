module lpm

go 1.22
