// Command lpmreport regenerates every table and figure of the paper and
// prints paper-reported values next to this reproduction's measurements.
// See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	lpmreport                      # everything, full scale
//	lpmreport -quick               # everything, reduced budgets
//	lpmreport -experiment table1   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"lpm"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"one of: fig1, table1, casestudy1, fig6, fig7, fig8, interval, identities, all")
		quick   = flag.Bool("quick", false, "reduced simulation budgets")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()
	lpm.SetWorkers(*workers)

	scale := lpm.FullScale()
	if *quick {
		scale = lpm.QuickScale()
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig1", func() error { return fig1() })
	run("table1", func() error { return table1(scale) })
	run("casestudy1", func() error { return caseStudy1(scale) })
	run("fig6", func() error { return fig67(scale, true) })
	run("fig7", func() error { return fig67(scale, false) })
	run("fig8", func() error { return fig8(scale) })
	run("interval", func() error { return intervalStudy() })
	run("identities", func() error { return identities(scale) })
}

func fig1() error {
	p := lpm.Fig1()
	ref := lpm.Fig1Reference()
	fmt.Println("Fig. 1 worked example (paper vs measured):")
	fmt.Printf("  C-AMAT  %.3f  vs  %.3f\n", ref.CAMAT, p.CAMAT())
	fmt.Printf("  AMAT    %.3f  vs  %.3f\n", ref.AMAT, p.AMAT())
	fmt.Printf("  C_H     %.3f  vs  %.3f\n", ref.CH, p.CH())
	fmt.Printf("  C_M     %.3f  vs  %.3f\n", ref.CM, p.CM())
	fmt.Printf("  pAMP    %.3f  vs  %.3f\n", ref.PAMP, p.PAMP())
	fmt.Printf("  pMR     %.3f  vs  %.3f\n", ref.PMR, p.PMR())
	fmt.Printf("  1/APC = %.3f (Eq. 3 check)\n", 1/p.APC())
	return nil
}

func table1(s lpm.Scale) error {
	fmt.Println("Table I — LPMRs under configurations with incremental parallelism (410.bwaves-like):")
	fmt.Printf("%-4s %-48s %-24s %-24s %s\n", "cfg", "point", "paper LPMR1/2/3", "measured LPMR1/2/3", "stall% of CPIexe")
	for _, r := range lpm.Table1(s) {
		fmt.Printf("%-4s %-48s %4.1f / %4.1f / %4.1f       %5.2f / %5.2f / %5.2f     %5.1f%%\n",
			r.Name, r.Point,
			r.PaperLPMR[0], r.PaperLPMR[1], r.PaperLPMR[2],
			r.M.LPMR1(), r.M.LPMR2(), r.M.LPMR3(),
			100*r.M.MeasuredStall/r.M.CPIexe)
	}
	return nil
}

func caseStudy1(s lpm.Scale) error {
	for _, g := range []lpm.Grain{lpm.CoarseGrain, lpm.FineGrain} {
		res := lpm.CaseStudyI(g, s)
		fmt.Printf("case study I, %s: steps=%d simulations=%d of %d (%.4f%%)\n",
			g, len(res.Algorithm.Steps), res.Evaluations, res.SpaceSize,
			100*float64(res.Evaluations)/float64(res.SpaceSize))
		fmt.Printf("  final point: %s (cost %.0f)\n", res.Final, res.Final.Cost())
		fmt.Printf("  final LPMR1=%.3f stall=%.4f (%.2f%% of CPIexe) converged=%v met=%v\n",
			res.Algorithm.Final.LPMR1(), res.Algorithm.Final.MeasuredStall,
			100*res.Algorithm.Final.MeasuredStall/res.Algorithm.Final.CPIexe,
			res.Algorithm.Converged, res.Algorithm.MetTarget)
	}
	return nil
}

func fig67(s lpm.Scale, apc1 bool) error {
	res, err := lpm.Fig67(s)
	if err != nil {
		return err
	}
	t := res.Table
	which := "APC1 (Fig. 6: L1 supply rate)"
	data := t.APC1
	if !apc1 {
		which = "APC2 (Fig. 7: L2 demand)"
		data = t.APC2
	}
	fmt.Printf("%s per private L1 data cache size:\n", which)
	fmt.Printf("%-16s", "workload")
	for _, sz := range t.Sizes {
		fmt.Printf(" %7dKB", sz/1024)
	}
	fmt.Println()
	for _, n := range t.Workloads {
		fmt.Printf("%-16s", n)
		for i := range t.Sizes {
			fmt.Printf(" %9.4f", data[n][i])
		}
		fmt.Println()
	}
	return nil
}

func fig8(s lpm.Scale) error {
	rows, err := lpm.Fig8(s)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 8 — Hsp of scheduling schemes on the NUCA 16-core CMP (paper vs measured):")
	for _, r := range rows {
		fmt.Printf("  %-12s %.4f  vs  %.4f\n", r.Scheduler, r.PaperHsp, r.Hsp)
	}
	return nil
}

func intervalStudy() error {
	fmt.Println("Interval study — burst patterns perceived and processed timely (paper vs analytic vs simulated):")
	for _, r := range lpm.IntervalStudy(0) {
		fmt.Printf("  %-16s %.2f  vs  %.4f  vs  %.4f\n", r.Scenario, r.Paper, r.Analytic, r.Simulated)
	}
	return nil
}

func identities(s lpm.Scale) error {
	reps, err := lpm.Identities(s)
	if err != nil {
		return err
	}
	fmt.Println("Model identities on live simulations:")
	for _, r := range reps {
		fmt.Printf("  %-14s |C-AMAT-1/APC|=%.2g  Eq4 rel.err=%.1f%%  stall model=%.4f measured=%.4f\n",
			r.Workload, r.CAMATvsInvAPC, 100*r.RecursionRelErr, r.StallModel, r.StallMeasured)
	}
	return nil
}
