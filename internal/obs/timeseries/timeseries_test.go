package timeseries

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"lpm/internal/analyzer"
	"lpm/internal/obs"
)

// fakeCollector returns a collector producing one-core windows whose
// counters scale with the window length, so merges and derivations are
// checkable arithmetically.
func fakeCollector(ipcNum uint64) func(cycles uint64) Window {
	return func(cycles uint64) Window {
		instr := cycles * ipcNum / 10
		var tree StallTree
		tree.Busy = cycles // trivially conserved: every cycle busy
		return Window{
			CPU: []CPUSample{{
				Instructions:    instr,
				MemInstructions: instr / 2,
				Cycles:          cycles,
			}},
			Cache: []CacheSample{{
				Level: "l1.0",
				Params: analyzer.Params{
					Accesses: instr / 2, Completed: instr / 2,
					Misses: instr / 20, PureMisses: instr / 40,
					HitAccessCycles: instr, HitActiveCycles: instr / 2,
					PureAccessCycles: instr / 10, PureCycles: instr / 20,
					Cycles: cycles, ActiveCycles: cycles / 2,
				},
				Hits:   instr/2 - instr/20,
				Misses: instr / 20,
			}, {
				Level: "l2",
				Params: analyzer.Params{
					Accesses: instr / 20, Completed: instr / 20,
					HitAccessCycles: instr / 5, HitActiveCycles: instr / 20,
				},
			}},
			DRAM:  DRAMSample{Reads: instr / 100, RowHits: 3, RowMisses: 1},
			Stall: []StallTree{tree},
		}
	}
}

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	s.Tick(1)
	s.Flush(2)
	s.SetCollector(nil)
	s.Track("x.probe", func() float64 { return 1 })
	if s.Windows() != 0 || s.Width() != 0 {
		t.Fatalf("nil sampler not inert: windows=%d width=%d", s.Windows(), s.Width())
	}
	if got := s.Series(); len(got.Windows) != 0 {
		t.Fatalf("nil sampler produced windows: %+v", got)
	}
	if cfg := s.Config(); cfg.Width != 0 || cfg.Adaptive || cfg.OnWindow != nil {
		t.Fatalf("nil sampler config = %+v", cfg)
	}
}

func TestFixedWindows(t *testing.T) {
	s := New(Config{Width: 100, CPIexe: 0.5})
	s.SetCollector(fakeCollector(8))
	for cy := uint64(0); cy < 250; cy++ {
		s.Tick(cy)
	}
	s.Flush(249)
	ser := s.Series()
	if len(ser.Windows) != 3 {
		t.Fatalf("want 3 windows (100+100+50), got %d", len(ser.Windows))
	}
	wantBounds := [][2]uint64{{0, 100}, {100, 200}, {200, 250}}
	for i, w := range ser.Windows {
		if w.Start != wantBounds[i][0] || w.End != wantBounds[i][1] {
			t.Errorf("window %d bounds [%d,%d), want [%d,%d)", i, w.Start, w.End, wantBounds[i][0], wantBounds[i][1])
		}
		if w.Index != i {
			t.Errorf("window %d index = %d", i, w.Index)
		}
		if w.Phase != -1 {
			t.Errorf("fixed-mode window %d has phase %d, want -1", i, w.Phase)
		}
	}
	if got := ser.TotalCycles(); got != 250 {
		t.Fatalf("series covers %d cycles, want 250", got)
	}
	// IPC of 8/10 per collector arithmetic.
	if ipc := ser.Windows[0].Derived.IPC; math.Abs(ipc-0.8) > 1e-12 {
		t.Errorf("window IPC = %v, want 0.8", ipc)
	}
	// LPMR1 = CAMAT1 * fmem / CPIexe must be positive with CPIexe set.
	if l := ser.Windows[0].Derived.LPMR1; l <= 0 {
		t.Errorf("LPMR1 = %v, want > 0", l)
	}
	if got := len(ser.LPMR1Series()); got != 3 {
		t.Errorf("LPMR1Series length %d, want 3", got)
	}
}

func TestPartialWindowOnlyOnFlush(t *testing.T) {
	s := New(Config{Width: 100})
	s.SetCollector(fakeCollector(10))
	for cy := uint64(0); cy < 30; cy++ {
		s.Tick(cy)
	}
	if s.Windows() != 0 {
		t.Fatalf("partial window closed early: %d", s.Windows())
	}
	s.Flush(29)
	if s.Windows() != 1 {
		t.Fatalf("flush did not close partial window: %d", s.Windows())
	}
	w := s.Series().Windows[0]
	if w.Start != 0 || w.End != 30 {
		t.Fatalf("partial window bounds [%d,%d), want [0,30)", w.Start, w.End)
	}
	// Double flush must not emit an empty window.
	s.Flush(29)
	if s.Windows() != 1 {
		t.Fatalf("second flush added a window: %d", s.Windows())
	}
}

func TestAdaptiveMergesStablePhases(t *testing.T) {
	s := New(Config{Width: 50, Adaptive: true})
	s.SetCollector(fakeCollector(8)) // identical behaviour every window
	for cy := uint64(0); cy < 500; cy++ {
		s.Tick(cy)
	}
	ser := s.Series()
	if len(ser.Windows) != 1 {
		t.Fatalf("stable behaviour should merge to 1 window, got %d", len(ser.Windows))
	}
	w := ser.Windows[0]
	if w.Start != 0 || w.End != 500 {
		t.Fatalf("merged window bounds [%d,%d), want [0,500)", w.Start, w.End)
	}
	if w.Phase != 0 {
		t.Fatalf("merged window phase = %d, want 0", w.Phase)
	}
	// Merged counters must equal the sum of the base windows.
	if got := w.CPU[0].Instructions; got != 400 {
		t.Fatalf("merged instructions = %d, want 400", got)
	}
	if got := w.AggregateStall().Total(); got != 500 {
		t.Fatalf("merged stall total = %d, want 500", got)
	}
}

func TestAdaptiveSplitsPhaseChange(t *testing.T) {
	behaviour := uint64(9)
	s := New(Config{Width: 50, Adaptive: true})
	s.SetCollector(func(cycles uint64) Window { return fakeCollector(behaviour)(cycles) })
	for cy := uint64(0); cy < 200; cy++ {
		s.Tick(cy)
	}
	behaviour = 1 // drastic IPC shift => new phase
	for cy := uint64(200); cy < 400; cy++ {
		s.Tick(cy)
	}
	ser := s.Series()
	if len(ser.Windows) != 2 {
		t.Fatalf("want 2 phase windows, got %d", len(ser.Windows))
	}
	if ser.Windows[0].Phase == ser.Windows[1].Phase {
		t.Fatalf("phase ids should differ: %d vs %d", ser.Windows[0].Phase, ser.Windows[1].Phase)
	}
	if ser.Windows[0].End != 200 || ser.Windows[1].Start != 200 {
		t.Fatalf("phase boundary misplaced: [%d,%d) [%d,%d)",
			ser.Windows[0].Start, ser.Windows[0].End, ser.Windows[1].Start, ser.Windows[1].End)
	}
	if got := ser.TotalCycles(); got != 400 {
		t.Fatalf("series covers %d cycles, want 400", got)
	}
}

func TestMaxWindowsDropsOldest(t *testing.T) {
	s := New(Config{Width: 10, MaxWindows: 3})
	s.SetCollector(fakeCollector(10))
	for cy := uint64(0); cy < 100; cy++ { // 10 base windows
		s.Tick(cy)
	}
	ser := s.Series()
	if len(ser.Windows) != 3 {
		t.Fatalf("stored %d windows, want 3", len(ser.Windows))
	}
	if ser.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", ser.Dropped)
	}
	if first := ser.Windows[0]; first.Index != 7 || first.Start != 70 {
		t.Fatalf("oldest kept window index=%d start=%d, want 7/70", first.Index, first.Start)
	}
}

func TestTrackProbesSampledSorted(t *testing.T) {
	s := New(Config{Width: 10})
	s.SetCollector(fakeCollector(10))
	occ := 5.0
	s.Track("cpu.0"+".rob_occupancy", func() float64 { return occ })
	s.Track("l1.0"+".mshr_occupancy", func() float64 { return 2 })
	for cy := uint64(0); cy < 10; cy++ {
		s.Tick(cy)
	}
	w := s.Series().Windows[0]
	if len(w.Probes) != 2 {
		t.Fatalf("probes = %+v, want 2", w.Probes)
	}
	if w.Probes[0].Name != "cpu.0.rob_occupancy" || w.Probes[1].Name != "l1.0.mshr_occupancy" {
		t.Fatalf("probes not sorted by name: %+v", w.Probes)
	}
	if w.Probes[0].Value != 5 {
		t.Fatalf("probe value = %v, want 5", w.Probes[0].Value)
	}
}

func TestOnWindowHookFires(t *testing.T) {
	var seen []Window
	s := New(Config{Width: 10, OnWindow: func(w Window) { seen = append(seen, w) }})
	s.SetCollector(fakeCollector(10))
	for cy := uint64(0); cy < 25; cy++ {
		s.Tick(cy)
	}
	s.Flush(24)
	if len(seen) != 3 {
		t.Fatalf("OnWindow fired %d times, want 3", len(seen))
	}
	if seen[2].End != 25 {
		t.Fatalf("last hooked window ends at %d, want 25", seen[2].End)
	}
}

func TestStallTreeChargeAndConservation(t *testing.T) {
	var tree StallTree
	classes := []int{
		ClassBusy, ClassEmpty, ClassCompute, ClassL1Hit, ClassL1Miss,
		ClassL2Miss, ClassL3Miss, ClassNoC, ClassDRAMQueue, ClassDRAMService,
		ClassOther, 99, // unknown class lands in Other
	}
	for _, c := range classes {
		tree.Charge(c)
	}
	if got := tree.Total(); got != uint64(len(classes)) {
		t.Fatalf("Total = %d, want %d: charge leaks cycles", got, len(classes))
	}
	if tree.Other != 2 {
		t.Fatalf("Other = %d, want 2 (explicit + unknown class)", tree.Other)
	}
	if got := tree.MemStall(); got != 9 {
		t.Fatalf("MemStall = %d, want 9", got)
	}
	var sum StallTree
	sum.Add(tree)
	sum.Add(tree)
	if sum.Total() != 2*tree.Total() {
		t.Fatalf("Add not additive: %d vs %d", sum.Total(), 2*tree.Total())
	}
	// Nil receivers must be inert.
	var np *StallTree
	np.Charge(ClassBusy)
	np.Add(tree)
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := New(Config{Width: 20, CPIexe: 0.5})
	s.SetCollector(fakeCollector(10))
	for cy := uint64(0); cy < 60; cy++ {
		s.Tick(cy)
	}
	ser := s.Series()
	b, err := json.Marshal(ser)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Series
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Version != SeriesVersion || len(back.Windows) != len(ser.Windows) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Windows[0].Derived.LPMR1 != ser.Windows[0].Derived.LPMR1 {
		t.Fatalf("derived values drifted through JSON")
	}
}

func TestLivePublishAndTimeline(t *testing.T) {
	l := NewLive()
	l.SetMeta(128, true)
	l.Publish(Window{Index: 0, Start: 0, End: 128})
	l.Publish(Window{Index: 1, Start: 128, End: 256})
	// Re-publishing an index replaces (adaptive merges re-emit).
	l.Publish(Window{Index: 1, Start: 128, End: 512})
	ser, done := l.Timeline()
	if done {
		t.Fatalf("run reported done before Finish")
	}
	if len(ser.Windows) != 2 {
		t.Fatalf("timeline has %d windows, want 2", len(ser.Windows))
	}
	if ser.Windows[1].End != 512 {
		t.Fatalf("re-publish did not replace: end=%d", ser.Windows[1].End)
	}
	if ser.Width != 128 || !ser.Adaptive || ser.Version != SeriesVersion {
		t.Fatalf("meta not carried: %+v", ser)
	}
	l.Finish()
	if _, done := l.Timeline(); !done {
		t.Fatalf("Finish not reported")
	}
	snap := &obs.Snapshot{Version: obs.SnapshotVersion}
	l.PublishSnapshot(snap)
	if l.Snapshot() != snap {
		t.Fatalf("snapshot not stored")
	}
}

func TestLiveNilIsNoOp(t *testing.T) {
	var l *Live
	l.SetMeta(1, false)
	l.Publish(Window{})
	l.PublishSnapshot(nil)
	l.Finish()
	if s, done := l.Timeline(); done || len(s.Windows) != 0 {
		t.Fatalf("nil live not inert")
	}
	if l.Snapshot() != nil {
		t.Fatalf("nil live returned snapshot")
	}
}

func TestLiveConcurrentReaders(t *testing.T) {
	l := NewLive()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.Publish(Window{Index: i, Start: uint64(i) * 10, End: uint64(i+1) * 10})
		}
		l.Finish()
	}()
	go func() {
		defer wg.Done()
		for {
			ser, done := l.Timeline()
			for j, w := range ser.Windows {
				if w.Index != j {
					t.Errorf("torn read: window %d has index %d", j, w.Index)
					return
				}
			}
			if done {
				return
			}
		}
	}()
	wg.Wait()
}
