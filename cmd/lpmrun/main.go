// Command lpmrun simulates one workload on a single-core chip and prints
// the full C-AMAT / LPM report: per-layer analyzer parameters, the three
// LPMRs, η, and modelled vs measured data stall time.
//
// Usage:
//
//	lpmrun -workload 403.gcc -instructions 30000 -l1 32768
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lpm/internal/parallel"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "410.bwaves", "built-in workload profile (see -list)")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list built-in workloads and exit")
		instr    = flag.Uint64("instructions", 30000, "instructions in the measured window")
		warmup   = flag.Uint64("warmup", 150000, "warm-up instructions discarded before measuring")
		l1Size   = flag.Uint64("l1", 32*chip.KB, "L1 data cache size in bytes")
		l1Ports  = flag.Int("l1ports", 2, "L1 ports")
		l1MSHRs  = flag.Int("mshrs", 8, "L1 MSHR count")
		l2Size   = flag.Uint64("l2", 4*chip.MB, "L2 size in bytes")
		l2Banks  = flag.Int("l2banks", 8, "L2 interleaving (banks)")
		issue    = flag.Int("issue", 4, "pipeline issue width")
		iw       = flag.Int("iw", 32, "instruction window size")
		rob      = flag.Int("rob", 64, "ROB size")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	if *list {
		fmt.Println(strings.Join(trace.ProfileNames(), "\n"))
		return
	}
	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := chip.SingleCore(*workload)
	cfg.Cores[0].CPU.IssueWidth = *issue
	cfg.Cores[0].CPU.IWSize = *iw
	cfg.Cores[0].CPU.LSQSize = *iw
	cfg.Cores[0].CPU.ROBSize = *rob
	cfg.Cores[0].L1 = chip.DefaultL1("L1D-0", *l1Size)
	cfg.Cores[0].L1.Ports = *l1Ports
	cfg.Cores[0].L1.MSHRs = *l1MSHRs
	cfg.L2 = chip.DefaultL2("L2", *l2Size)
	cfg.L2.Banks = *l2Banks

	gen := trace.NewSynthetic(prof)
	cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), *instr)

	ch := chip.New(cfg)
	budget := (*warmup + *instr) * 600
	ch.RunUntilRetired(*warmup, budget)
	ch.ResetCounters()
	ch.Run(*warmup+*instr, budget)

	r := ch.Snapshot()
	m := ch.Measure(0, cpiExe)

	fmt.Printf("workload   %s  (fmem=%.3f, footprint=%d KB)\n", *workload, m.Fmem, prof.Footprint/1024)
	fmt.Printf("core       issue=%d IW=%d ROB=%d   CPIexe=%.3f  IPC=%.3f\n", *issue, *iw, *rob, cpiExe, m.IPC)
	fmt.Printf("L1         %s\n", r.Cores[0].L1)
	fmt.Printf("L2         %s\n", r.L2)
	fmt.Printf("memory     reads=%d writes=%d avgReadLat=%.1f APC3=%.4f rowHit/miss/conf=%d/%d/%d\n",
		r.Mem.Reads, r.Mem.Writes, r.Mem.AvgReadLatency(), r.Mem.APC(),
		r.Mem.RowHits, r.Mem.RowMisses, r.Mem.RowConflicts)
	fmt.Println()
	fmt.Printf("LPMR1=%.3f  LPMR2=%.3f  LPMR3=%.3f   eta=%.4f  overlap=%.3f\n",
		m.LPMR1(), m.LPMR2(), m.LPMR3(), m.Eta(), m.OverlapRatio)
	fmt.Printf("thresholds T1(1%%)=%.3f T1(10%%)=%.3f", m.T1(1), m.T1(10))
	if t2, ok := m.T2(1); ok {
		fmt.Printf("  T2(1%%)=%.3f", t2)
	}
	fmt.Println()
	fmt.Printf("data stall per instruction: model(Eq.12)=%.4f  model(Eq.13)=%.4f  measured=%.4f  (%.1f%% of CPIexe)\n",
		m.StallEq12(), m.StallEq13(), m.MeasuredStall, 100*m.MeasuredStall/cpiExe)
}
