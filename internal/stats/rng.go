// Package stats provides the small statistics substrate used throughout the
// LPM reproduction: deterministic pseudo-random number generation, running
// moments, histograms, and the multiprogram throughput/fairness metrics
// (weighted speedup and harmonic weighted speedup) used by the paper's
// case study II.
//
// Everything in this package is allocation-light and deterministic so that
// simulations are exactly reproducible from a seed.
package stats

import "math"

// RNG is a deterministic 64-bit pseudo-random number generator based on
// SplitMix64 seeding an xorshift128+ core. It is not safe for concurrent
// use; give each simulated component its own RNG.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s0, s1 uint64
}

// splitmix64 advances the seed mixer and returns the next mixed value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator whose stream is fully determined by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream determined by seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xorshift state must be non-zero
	}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	r.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return r.s1 + y
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// p is clamped to (0, 1]; p >= 1 always returns 0.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	u := r.Float64()
	// Inverse transform sampling. 1-u avoids log(0).
	return int(math.Log(1-u) / math.Log(1-p))
}

// Zipf returns a sample in [0, n) following an approximate Zipf distribution
// with exponent s > 0 using inverse transform over the harmonic CDF. It is
// used to draw hot working-set blocks with realistic skew.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Approximate inverse CDF for Zipf via the continuous bounded Pareto
	// distribution; adequate for workload shaping (not for statistics).
	// The s→1 limit divides by 1-s below, so nudge a whole neighbourhood
	// of 1 (not just the exact value) off the singularity.
	if math.Abs(s-1) < 1e-7 {
		s = 1.0000001
	}
	u := r.Float64()
	oneMinusS := 1 - s
	h := (math.Pow(float64(n), oneMinusS)-1)*u + 1
	x := math.Pow(h, 1/oneMinusS)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// GeomSampler draws geometric samples for a fixed success probability,
// hoisting the per-call math.Log(1-p) of RNG.Geometric out of the hot
// path. Its stream is bit-identical to calling Geometric(p) with the
// same p: the same draws are consumed (none when p >= 1) and the same
// float computation performed, only with the constant factor cached.
type GeomSampler struct {
	one  bool    // p >= 1: the sample is always 0 and consumes no draw
	logQ float64 // math.Log(1-p) after the (0,1] clamp
}

// NewGeomSampler precomputes a sampler equivalent to Geometric(p).
func NewGeomSampler(p float64) GeomSampler {
	if p >= 1 {
		return GeomSampler{one: true}
	}
	if p <= 0 {
		p = 1e-9
	}
	return GeomSampler{logQ: math.Log(1 - p)}
}

// Sample draws the next geometric sample from r.
func (s GeomSampler) Sample(r *RNG) int {
	if s.one {
		return 0
	}
	u := r.Float64()
	// Inverse transform sampling. 1-u avoids log(0).
	return int(math.Log(1-u) / s.logQ)
}

// ZipfSampler draws Zipf samples for a fixed (n, s), hoisting the
// math.Pow over the constant domain size out of RNG.Zipf's per-call
// path. Bit-identical to Zipf(n, s): same draws (none when n <= 1),
// same arithmetic, constant factors cached.
type ZipfSampler struct {
	n    int
	span float64 // math.Pow(n, 1-s) - 1
	inv  float64 // 1 / (1 - s)
}

// NewZipfSampler precomputes a sampler equivalent to Zipf(n, s).
func NewZipfSampler(n int, s float64) ZipfSampler {
	if n <= 1 {
		return ZipfSampler{n: n}
	}
	if math.Abs(s-1) < 1e-7 {
		s = 1.0000001
	}
	oneMinusS := 1 - s
	return ZipfSampler{
		n:    n,
		span: math.Pow(float64(n), oneMinusS) - 1,
		inv:  1 / oneMinusS,
	}
}

// Sample draws the next Zipf sample from r.
func (z ZipfSampler) Sample(r *RNG) int {
	if z.n <= 1 {
		return 0
	}
	u := r.Float64()
	x := math.Pow(z.span*u+1, z.inv)
	i := int(x) - 1
	if i < 0 {
		i = 0
	}
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
