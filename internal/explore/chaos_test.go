package explore

// Chaos tests for the hardened evaluation path: a watchdog trip on one
// workload must surface as that workload's structured error while its
// siblings finish, and a cancellation mid-walk must drain cleanly
// without poisoning the memo a resumed run draws from.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lpm/internal/core"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
	"lpm/internal/trace"
)

// newChaosTarget builds a small-budget target at Table I's point A. The
// budgets are distinct from the other tests' so a deliberately poisoned
// memo entry (a memoised livelock) can never leak across tests even
// without the Cleanup reset.
func newChaosTarget(t *testing.T, workload string) *HardwareTarget {
	t.Helper()
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewHardwareTarget(DefaultSpace(), TableConfigs()["A"], prof)
	tgt.Warmup = 21000
	tgt.Instructions = 5000
	return tgt
}

// measureRecovered is the driver-boundary idiom: Measure escapes the
// error-less core.Target interface by panicking resilience.Abort, and
// the caller recovers it back into an error.
func measureRecovered(tgt *HardwareTarget) (m core.Measurement, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = resilience.Recover(r)
		}
	}()
	return tgt.Measure(), nil
}

func TestChaosWatchdogLivelockIsolation(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()

	// A 1-cycle no-progress budget is an impossible bar: the first
	// stalled cycle already counts as a livelock, so the watchdog trips
	// deterministically on the victim. The sibling runs untouched.
	workloads := []string{"410.bwaves", "429.mcf"}
	budgets := map[string]uint64{"410.bwaves": 1}
	res := parallel.MapResults(context.Background(), workloads,
		func(ctx context.Context, name string) (core.Measurement, error) {
			tgt := newChaosTarget(t, name)
			tgt.Ctx = ctx
			tgt.WatchdogCycles = budgets[name]
			return tgt.Measure(), nil // Abort panics are recovered by MapResults
		})

	victim, healthy := res[0], res[1]
	if healthy.Err != nil || !healthy.Ran {
		t.Fatalf("healthy workload failed alongside the livelocked one: ran=%v err=%v",
			healthy.Ran, healthy.Err)
	}
	if healthy.Val.CPIexe <= 0 {
		t.Fatalf("healthy workload's measurement is empty: %+v", healthy.Val)
	}
	if victim.Err == nil {
		t.Fatal("1-cycle watchdog budget did not trip")
	}
	var ll *resilience.LivelockError
	if !errors.As(victim.Err, &ll) {
		t.Fatalf("victim error %v does not carry a *resilience.LivelockError", victim.Err)
	}
	if ll.Budget != 1 || ll.Cycle == 0 {
		t.Fatalf("livelock bundle budget=%d cycle=%d, want budget 1 at a nonzero cycle",
			ll.Budget, ll.Cycle)
	}
	if len(ll.Occupancy) == 0 || len(ll.Retired) == 0 {
		t.Fatalf("livelock diagnostic bundle is empty: %+v", ll)
	}

	// A livelock is deterministic, so it is memoised: re-measuring the
	// same point fails from the cache with the same structured error.
	tgt := newChaosTarget(t, "410.bwaves")
	tgt.WatchdogCycles = 1
	_, err := measureRecovered(tgt)
	var ll2 *resilience.LivelockError
	if !errors.As(err, &ll2) || ll2.Cycle != ll.Cycle {
		t.Fatalf("memoised livelock replay = %v, want the original trip at cycle %d", err, ll.Cycle)
	}
}

func TestChaosCancelMidWalkDrainsAndReruns(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()
	cfg := core.AlgorithmConfig{Grain: core.FineGrain, SlackFrac: 0.5, MaxSteps: 3}

	// Uninterrupted baseline.
	base := newChaosTarget(t, "410.bwaves")
	baseRes, basePt, err := base.RunAlgorithmCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// Cancel from inside the second evaluation's completion hook: the
	// in-flight evaluation has drained (it is in History), and the next
	// one must abort with the context's error before being recorded.
	parallel.ResetAllMemos()
	ctx, cancel := context.WithCancel(context.Background())
	tgt := newChaosTarget(t, "410.bwaves")
	evals := 0
	tgt.OnEvaluate = func(Evaluation) {
		if evals++; evals == 2 {
			cancel()
		}
	}
	_, _, err = tgt.RunAlgorithmCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled walk: err = %v, want context.Canceled", err)
	}
	if got := len(tgt.History()); got != 2 {
		t.Fatalf("history after cancel holds %d evaluations, want exactly the 2 drained ones", got)
	}

	// The cancelled evaluation must not be memoised: a rerun on the same
	// flags re-simulates and reproduces the baseline exactly.
	rerun := newChaosTarget(t, "410.bwaves")
	rerunRes, rerunPt, err := rerun.RunAlgorithmCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if rerunPt != basePt || !reflect.DeepEqual(rerunRes, baseRes) {
		t.Fatalf("rerun after cancel diverged from the baseline:\nbase  %v at %s\nrerun %v at %s",
			baseRes.Final, basePt, rerunRes.Final, rerunPt)
	}
}
