package ctrl

// Single-run exposition handlers: Prometheus text on /metrics, the JSON
// timeline on /timeline. These used to live in cmd/lpmrun; they moved
// here so lpmrun -serve and the control plane's per-run endpoints are
// one code path with byte-identical output.

import (
	"bytes"
	"encoding/json"
	"net/http"

	"lpm/internal/obs/timeseries"
)

// MetricsHandler serves the run's latest metrics snapshot plus its
// timeline series in Prometheus text exposition format 0.0.4.
func MetricsHandler(live *timeseries.Live) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := live.Snapshot().WritePromText(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		ser, _ := live.Timeline()
		if err := ser.WritePromText(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The scrape response is best-effort: a vanished client is its
		// own problem.
		_, _ = w.Write(buf.Bytes())
	}
}

// TimelineHandler serves the run's full windowed series as a
// lpm-timeline/v1 JSON document.
func TimelineHandler(live *timeseries.Live) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ser, done := live.Timeline()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TimelineDoc{Schema: TimelineSchema, Done: done, Series: ser})
	}
}

// NewExpoMux builds the single-run serving mux lpmrun -serve exposes:
// /metrics and /timeline.
func NewExpoMux(live *timeseries.Live) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(live))
	mux.HandleFunc("/timeline", TimelineHandler(live))
	return mux
}

// SnapshotEvery is the serve paths' snapshot cadence in windows.
// Scrapers poll /metrics at ~1 Hz while default-width windows close
// every few hundred microseconds of wall-clock, so snapshotting the
// whole registry on every window buys no freshness and costs ~2% of
// the engine loop; every SnapshotEvery-th window keeps the live view
// far fresher than any scrape interval.
const SnapshotEvery = 16

// ThrottleSnapshots returns a per-window hook that invokes publish on
// the first window and every SnapshotEvery-th after it. Callers must
// still publish a final snapshot when the run completes — the throttle
// only covers the mid-run cadence. Single-goroutine, like the OnWindow
// hook it is called from.
func ThrottleSnapshots(publish func()) func() {
	n := 0
	return func() {
		if n%SnapshotEvery == 0 {
			publish()
		}
		n++
	}
}
