package lpm

import (
	"context"
	"reflect"
	"testing"

	"lpm/internal/sched"
	"lpm/internal/sim/chip"
)

// The parallel runner must be invisible in the results: every simulation
// builds its own generator and chip, so fanning the batch out over
// workers has to produce bit-identical Measurements. Any divergence
// means a job reached shared mutable state.

func TestParallelTable1MatchesSerialExactly(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	ResetSimCaches()
	SetWorkers(1)
	serial := Table1(QuickScale())

	ResetSimCaches() // force real re-simulation, not memo hits
	SetWorkers(4)
	parallel := Table1(QuickScale())

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Table1 diverged from serial baseline:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}

	// A repeat run without resetting must serve from the memo and still
	// be bit-identical.
	memoised := Table1(QuickScale())
	if !reflect.DeepEqual(parallel, memoised) {
		t.Fatal("memoised Table1 diverged from the run that filled the cache")
	}
}

// Observability must not perturb determinism: snapshots are taken from
// per-simulation registries, so observed runs fanned over workers have
// to match the serial baseline metric for metric — and must never
// collide with unobserved runs in the memo.
func TestParallelObservedTable1SnapshotsMatchSerial(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	// A reduced budget: snapshot determinism does not depend on scale.
	s := Scale{Warmup: 30000, Window: 8000}

	ResetSimCaches()
	SetWorkers(1)
	serial := Table1Observed(s)

	ResetSimCaches()
	SetWorkers(4)
	parallel := Table1Observed(s)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel observed Table1 diverged from serial baseline:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}

	for _, r := range serial {
		if r.M.Obs == nil {
			t.Fatalf("row %s: observed run carries no snapshot", r.Name)
		}
		for _, name := range []string{
			"cpu.0.instructions", "cpu.0.cycles", "l1.0.accesses",
			"l1.0.misses", "l2.accesses", "dram.reads",
		} {
			if _, ok := r.M.Obs.Metric(name); !ok {
				t.Fatalf("row %s: snapshot lacks %q", r.Name, name)
			}
		}
		if r.M.Obs.Counter("l1.0.accesses") == 0 {
			t.Fatalf("row %s: snapshot recorded zero L1 accesses", r.Name)
		}
	}

	// An unobserved run at the same scale must not be served the observed
	// result: the Observe flag is part of the memo key.
	plain := Table1(s)
	for _, r := range plain {
		if r.M.Obs != nil {
			t.Fatalf("row %s: unobserved run returned a snapshot (memo key collision)", r.Name)
		}
	}
}

// Timelines are part of the measurement, so they obey the same law:
// fanning the sampled runs over workers must reproduce the serial
// timelines window for window — and the Timeline flag must never let a
// sampled run and a plain run share a memo slot.
func TestParallelTimelinesMatchSerialExactly(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	// A reduced budget: timeline determinism does not depend on scale.
	s := Scale{Warmup: 30000, Window: 8000}

	ResetSimCaches()
	SetWorkers(1)
	serial := TimelineStudy(s)

	ResetSimCaches()
	SetWorkers(4)
	parallel := TimelineStudy(s)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel timelines diverged from serial baseline:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	for _, r := range serial {
		if r.M.Timeline == nil || len(r.M.Timeline.Windows) == 0 {
			t.Fatalf("row %s: sampled run carries no timeline", r.Name)
		}
	}

	// A plain run at the same scale must not be served the sampled
	// result: the Timeline flag is part of the memo key.
	for _, r := range Table1(s) {
		if r.M.Timeline != nil {
			t.Fatalf("row %s: plain run returned a timeline (memo key collision)", r.Name)
		}
	}
}

func TestParallelAloneIPCsMatchesSerialExactly(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	names := Workloads()
	sizes := chip.NUCAGroupSizes[:]
	opt := sched.EvalOptions{WindowCycles: 20000, WarmupCycles: 10000}

	ResetSimCaches()
	SetWorkers(1)
	serial, err := sched.AloneIPCs(context.Background(), names, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}

	ResetSimCaches()
	SetWorkers(4)
	parallel, err := sched.AloneIPCs(context.Background(), names, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel AloneIPCs diverged from serial baseline:\nserial:   %v\nparallel: %v",
			serial, parallel)
	}
}

// Speculative frontier pre-evaluation trades extra simulations for
// wall-clock; the walk it feeds must be unchanged — same steps, same
// final point, same per-point measurements, same Evaluations() count.
func TestSpeculativeExplorationMatchesSerialWalk(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	run := func(speculate bool, workers int) CaseStudyIResult {
		ResetSimCaches()
		SetWorkers(workers)
		// A reduced budget: determinism does not depend on the scale, and
		// speculation multiplies the simulated points per step.
		s := Scale{Warmup: 30000, Window: 8000}
		tgt := newCaseStudyTarget(s)
		tgt.Speculate = speculate
		cfg := caseStudyConfig(CoarseGrain)
		cfg.MaxSteps = 6 // a 6-step walk already crosses several frontiers
		res, final := tgt.RunAlgorithm(cfg)
		return CaseStudyIResult{
			Algorithm:   res,
			Final:       final,
			Evaluations: tgt.Evaluations(),
			SpaceSize:   0,
		}
	}

	serial := run(false, 1)
	speculative := run(true, 4)

	if !reflect.DeepEqual(serial, speculative) {
		t.Fatalf("speculative walk diverged:\nserial:      %+v\nspeculative: %+v",
			serial, speculative)
	}
}
