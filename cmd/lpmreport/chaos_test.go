package main

// Chaos regression for the per-experiment checkpoint path: the merged
// document a checkpointed (or resumed) run emits must be byte-identical
// to the single-call run's. This pins the merge itself — a dropped or
// duplicated experiment payload is a silent data loss the schema cannot
// catch.

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"lpm/internal/parallel"
)

func TestChaosReportCheckpointMatchesPlain(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	base := []string{"-json", "-quick", "-experiment", "fig1,table1"}

	parallel.ResetAllMemos()
	var plain, errb bytes.Buffer
	if err := run(context.Background(), base, &plain, &errb); err != nil {
		t.Fatalf("plain run: %v\n%s", err, errb.String())
	}

	parallel.ResetAllMemos()
	var checkpointed bytes.Buffer
	if err := run(context.Background(), append(base, "-checkpoint", ckpt), &checkpointed, &errb); err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, errb.String())
	}
	if !bytes.Equal(plain.Bytes(), checkpointed.Bytes()) {
		t.Fatalf("checkpointed document differs from the plain run:\n--- plain\n%s--- checkpointed\n%s",
			plain.String(), checkpointed.String())
	}

	// Resume from the finished checkpoint with a cold memo: every
	// simulation replays from the cache, and the document must still
	// match byte for byte.
	parallel.ResetAllMemos()
	var resumed bytes.Buffer
	if err := run(context.Background(), append(base, "-resume", ckpt), &resumed, &errb); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, errb.String())
	}
	if !bytes.Equal(plain.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed document differs from the plain run:\n--- plain\n%s--- resumed\n%s",
			plain.String(), resumed.String())
	}
}
