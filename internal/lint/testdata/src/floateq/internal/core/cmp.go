// Package core is the floateq fixture: the two findings, then every
// idiom that stays legal.
package core

// Equal compares model quantities exactly: flagged.
func Equal(a, b float64) bool {
	return a == b // want "floating-point == on model quantities"
}

// Diverged is the != form.
func Diverged(a, b float64) bool {
	return a != b // want "floating-point != on model quantities"
}

// ZeroGuard has exact-zero semantics (division/sentinel guards): legal.
func ZeroGuard(x float64) bool {
	return x == 0
}

// IsNaN is the x != x idiom: legal.
func IsNaN(x float64) bool {
	return x != x
}

// Ints compares integers; the rule only covers floats.
func Ints(a, b int) bool {
	return a == b
}

// approxEqual is a tolerance helper: the exact compare inside it is the
// implementation of the tolerance fast path.
func approxEqual(a, b float64) bool {
	return a == b || diff(a, b) < 1e-9
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

const third = 1.0 / 3

// ConstFold compares two compile-time constants: legal.
func ConstFold() bool {
	return third == 0.3333333333333333
}
