package main

// Chaos regression tests for the checkpoint/resume path. The
// "kill-equivalent" interruption is a deterministic faultinject firing
// at an injected point: the state it leaves on disk is exactly what a
// kill -9 at that instant would leave, because every checkpoint write
// is an atomic temp-file+fsync+rename. The recovery contract under
// test: a resumed run must reproduce the uninterrupted run's output
// bit for bit.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpm"
	"lpm/internal/faultinject"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
)

// chaosArgs is the shared tiny-budget flag set; every run in a test must
// use the same result-shaping flags or -resume refuses the checkpoint.
func chaosArgs(extra ...string) []string {
	return append([]string{"-warmup", "20000", "-window", "5000", "-maxsteps", "3", "-json"}, extra...)
}

func TestChaosCheckpointResumeBitIdentical(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Uninterrupted baseline, memo-cold.
	parallel.ResetAllMemos()
	var base, baseErr bytes.Buffer
	if err := run(context.Background(), chaosArgs(), &base, &baseErr); err != nil {
		t.Fatalf("baseline: %v\n%s", err, baseErr.String())
	}

	// Interrupted run: the fourth evaluation dies at the injected fault
	// point, mid-walk, with the checkpoint rewritten after each of the
	// three that completed.
	parallel.ResetAllMemos()
	restore := faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Point: "explore.evaluate", After: 3, Msg: "chaos kill",
	}))
	var killed, killedErr bytes.Buffer
	err := run(context.Background(), chaosArgs("-checkpoint", ckpt), &killed, &killedErr)
	restore()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("interrupted run: err = %v, want the injected fault", err)
	}
	// Even interrupted, stdout must carry a decodable partial document.
	var partial lpm.ExploreReport
	if err := json.Unmarshal(killed.Bytes(), &partial); err != nil {
		t.Fatalf("interrupted output is not valid JSON: %v\n%s", err, killed.String())
	}
	if !partial.Partial || partial.Error == "" {
		t.Fatalf("interrupted doc: partial=%v error=%q, want it marked partial with the cause",
			partial.Partial, partial.Error)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Resume with a cold memo — a fresh process — and compare against
	// the uninterrupted baseline byte for byte.
	parallel.ResetAllMemos()
	var resumed, resumedErr bytes.Buffer
	if err := run(context.Background(), chaosArgs("-resume", ckpt), &resumed, &resumedErr); err != nil {
		t.Fatalf("resume: %v\n%s", err, resumedErr.String())
	}
	if strings.Contains(resumedErr.String(), "starting cold") {
		t.Fatalf("resume fell back to a cold start:\n%s", resumedErr.String())
	}
	if !bytes.Equal(base.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed output differs from the uninterrupted run:\n--- baseline\n%s--- resumed\n%s",
			base.String(), resumed.String())
	}
}

func TestChaosTornCheckpointWriteKeepsLastGood(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Let the first checkpoint land, then kill every later rewrite at
	// the rename — the commit point. The file on disk must remain the
	// last complete checkpoint, never a hybrid.
	restore := faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Point: "cliutil.atomic.rename", Match: "run.ckpt",
		After: 1, Times: 1 << 20, Msg: "chaos: torn rename",
	}))
	var out, errb bytes.Buffer
	err := run(context.Background(), chaosArgs("-checkpoint", ckpt), &out, &errb)
	restore()
	if err != nil {
		// Checkpoint failures are warnings, not run failures.
		t.Fatalf("run failed on checkpoint-write faults: %v\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "checkpoint:") {
		t.Fatalf("failed checkpoint rewrites were not reported on stderr:\n%s", errb.String())
	}
	var ck lpm.Checkpoint
	if err := resilience.LoadCheckpoint(ckpt, &ck); err != nil {
		t.Fatalf("surviving checkpoint does not decode: %v", err)
	}
	if ck.Schema != lpm.CheckpointSchema || len(ck.Memos["explore.sim"]) == 0 {
		t.Fatalf("surviving checkpoint is not the last good one: schema=%q memos=%d",
			ck.Schema, len(ck.Memos))
	}
}

func TestChaosResumeRefusesMismatchedFlags(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	var out, errb bytes.Buffer
	if err := run(context.Background(), chaosArgs("-checkpoint", ckpt), &out, &errb); err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, errb.String())
	}
	// A different -window changes what the cached results mean.
	args := []string{"-warmup", "20000", "-window", "6000", "-maxsteps", "3", "-json", "-resume", ckpt}
	err := run(context.Background(), args, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "run key mismatch") {
		t.Fatalf("resume under different flags: err = %v, want a run key mismatch", err)
	}
}

func TestChaosCancelledContextStillEmitsPartialDoc(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT before the first simulation finishes

	var out, errb bytes.Buffer
	err := run(ctx, chaosArgs(), &out, &errb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	var rep lpm.ExploreReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("cancelled run's output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != lpm.ExploreSchema || !rep.Partial {
		t.Fatalf("cancelled doc: schema=%q partial=%v, want a partial %s document",
			rep.Schema, rep.Partial, lpm.ExploreSchema)
	}
}
