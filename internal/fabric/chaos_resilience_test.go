package fabric

// Resilience chaos suite: the failures the fleet's health, quarantine,
// and journal machinery exist to absorb. Where chaos_test.go kills
// workers at the process level, these scenarios attack the *network*
// (partitions that keep sockets open, corrupted frames, hung TCP) and
// the *coordinator* (kill -9 with a torn journal tail) and check the
// same invariant throughout: every granule resolves exactly once with
// bytes identical to a serial in-process run. All tests run under
// `make chaos` (-race).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lpm/internal/faultinject"
	"lpm/internal/resilience/fleet"
)

// serialValue runs the registered executor in-process — the byte
// baseline every sharded result must match exactly.
func serialValue(t *testing.T, kind string, x, ms int) json.RawMessage {
	t.Helper()
	exec, err := lookupKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(map[string]int{"X": x, "MS": ms})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore ctxflow serial baseline runs outside any fabric session
	v, err := exec(context.Background(), spec)
	if err != nil {
		t.Fatalf("serial %s(%d): %v", kind, x, err)
	}
	return v
}

// runIdenticalBatch pushes n granules through c concurrently and
// asserts every result is byte-identical to the serial baseline.
func runIdenticalBatch(t *testing.T, c *Coordinator, kind string, n, sleepMS int) {
	t.Helper()
	//lint:ignore ctxflow test batch root; the timeout bounds the whole drain
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec, err := json.Marshal(map[string]int{"X": i, "MS": sleepMS})
			if err != nil {
				errs[i] = err
				return
			}
			raw, err := c.Submit(ctx, kind, fmt.Sprintf("%s|%d|%d", kind, i, sleepMS), spec)
			if err != nil {
				errs[i] = err
				return
			}
			if want := serialValue(t, kind, i, 0); !bytes.Equal(raw, want) {
				errs[i] = fmt.Errorf("result %q differs from serial bytes %q", raw, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("granule %d: %v", i, err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosFabricPartitionDuringStragglerDuplication drops a partition
// on one worker's link mid-batch: its TCP session stays open but no
// bytes move, so its held granules age into stragglers. The straggler
// pass must duplicate them onto the healthy worker and the batch must
// finish with serial-identical bytes despite the partitioned copies
// never resolving.
func TestChaosFabricPartitionDuringStragglerDuplication(t *testing.T) {
	c, err := Listen("127.0.0.1:0", Options{
		InFlight:      2,
		StraggleAfter: 100 * time.Millisecond,
		TickEvery:     5 * time.Millisecond,
		Heartbeat:     25 * time.Millisecond,
		// Health stays far behind the straggler deadline so recovery is
		// attributable to duplication, not eviction.
		Health: fleet.HealthPolicy{SuspectAfter: 40, DeadAfter: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy, err := faultinject.NewNetProxy(c.Addr(), 23)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	//lint:ignore ctxflow test fixture root context; cancelled on cleanup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() { _ = RunWorker(ctx, proxy.Addr(), WorkerOptions{Name: "proxied", Slots: 1}) }()
	go func() { _ = RunWorker(ctx, c.Addr(), WorkerOptions{Name: "direct", Slots: 1}) }()
	if err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		runIdenticalBatch(t, c, "test.sleep", 24, 10)
	}()
	// Let the batch reach steady state, then cut the proxied link.
	waitFor(t, 30*time.Second, "first completions", func() bool {
		return c.Stats().Completed >= 4
	})
	proxy.Partition()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		t.Fatalf("batch never drained through the partition: stats=%+v", c.Stats())
	}
	proxy.Heal()

	st := c.Stats()
	if st.Completed != 24 {
		t.Fatalf("completed=%d, want 24", st.Completed)
	}
	if st.Duplicated == 0 {
		t.Fatalf("stats=%+v: the partitioned worker's granules were never duplicated", st)
	}
}

// TestChaosFabricHungTCPHeartbeatLoss partitions a worker's link
// without closing it — the hung-TCP failure reads and writes never
// detect. Only the heartbeat deadline can: the coordinator must classify
// the worker suspect, then dead, evict it, re-queue its granules, and
// finish the batch on the surviving worker.
func TestChaosFabricHungTCPHeartbeatLoss(t *testing.T) {
	c, err := Listen("127.0.0.1:0", Options{
		InFlight:      2,
		StraggleAfter: -1, // recovery must come from health, not stragglers
		TickEvery:     5 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
		Health:        fleet.HealthPolicy{SuspectAfter: 20, DeadAfter: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy, err := faultinject.NewNetProxy(c.Addr(), 29)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	//lint:ignore ctxflow test fixture root context; cancelled on cleanup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() { _ = RunWorker(ctx, proxy.Addr(), WorkerOptions{Name: "hung", Slots: 1}) }()
	go func() { _ = RunWorker(ctx, c.Addr(), WorkerOptions{Name: "alive", Slots: 1}) }()
	if err := c.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		runIdenticalBatch(t, c, "test.sleep", 24, 8)
	}()
	waitFor(t, 30*time.Second, "first completions", func() bool {
		return c.Stats().Completed >= 2
	})
	proxy.Partition()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		t.Fatalf("batch never drained past the hung worker: stats=%+v", c.Stats())
	}
	// The eviction may land just after the last granule resolves.
	waitFor(t, 10*time.Second, "hung worker eviction", func() bool {
		return c.Stats().Workers == 1
	})
	proxy.Heal()

	st := c.Stats()
	if st.Completed != 24 {
		t.Fatalf("completed=%d, want 24", st.Completed)
	}
	if st.Suspects == 0 {
		t.Fatalf("stats=%+v: the hung worker was never suspected by heartbeat silence", st)
	}
	if st.Requeued == 0 {
		t.Fatalf("stats=%+v: the dead worker's granules were never re-queued", st)
	}
}

// TestChaosFabricCorruptFrameReconnect flips one bit in forwarded
// frames mid-batch. The LPMCKPT1 CRC must reject the damage and drop
// the session — never resolve a granule from a corrupt frame — and the
// worker's redial loop (the lpmworker reconnect pattern, spaced by the
// shared backoff policy) must restore capacity and drain the batch.
func TestChaosFabricCorruptFrameReconnect(t *testing.T) {
	c, err := Listen("127.0.0.1:0", Options{
		InFlight:      2,
		StraggleAfter: -1,
		TickEvery:     5 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
		Health:        fleet.HealthPolicy{SuspectAfter: 40, DeadAfter: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy, err := faultinject.NewNetProxy(c.Addr(), 41)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	//lint:ignore ctxflow test fixture root context; cancelled on cleanup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	policy := fleet.Defaults(99)
	policy.Base = 5 * time.Millisecond
	policy.Cap = 50 * time.Millisecond
	go func() {
		for attempt := 0; ctx.Err() == nil; attempt++ {
			_ = RunWorker(ctx, proxy.Addr(), WorkerOptions{
				Name: "flaky", Slots: 2, DialRetry: 5 * time.Second,
			})
			if err := policy.Sleep(ctx, attempt); err != nil {
				return
			}
		}
	}()
	if err := c.WaitWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		runIdenticalBatch(t, c, "test.sleep", 16, 8)
	}()
	waitFor(t, 30*time.Second, "first completions", func() bool {
		return c.Stats().Completed >= 4
	})
	proxy.CorruptNext(2)
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		t.Fatalf("batch never drained after frame corruption: stats=%+v", c.Stats())
	}

	st := c.Stats()
	if st.Completed != 16 {
		t.Fatalf("completed=%d, want 16", st.Completed)
	}
	if st.Joined < 2 {
		t.Fatalf("stats=%+v: the corrupted session never reconnected", st)
	}
}

// TestChaosFabricCoordinatorKillJournalResume kills the coordinator
// mid-quarantine, kill -9 style: the successor sees only the journal
// bytes fsynced before the kill, with the final record torn mid-write.
// It must replay the torn journal, carry the liar's quarantine across
// the restart (refusing its handshake), and complete the full sweep
// with bytes identical to a serial run.
func TestChaosFabricCoordinatorKillJournalResume(t *testing.T) {
	dir := t.TempDir()
	j1 := filepath.Join(dir, "sched.journal")
	j2 := filepath.Join(dir, "sched.journal.crashed")

	// Phase 1: one worker lies once; cross-validation must catch and
	// quarantine it, journaling the decision.
	restore := faultinject.Arm(faultinject.NewPlan(31, faultinject.Rule{
		Point: "fabric.worker.lie", Match: "test.double",
		After: 0, Times: 1, Msg: "chaos: worker lies once",
	}))
	c1, err := Listen("127.0.0.1:0", Options{
		InFlight: 2, StraggleAfter: -1, ValidateEvery: 1, JournalPath: j1,
	})
	if err != nil {
		restore()
		t.Fatal(err)
	}
	//lint:ignore ctxflow test fixture root context; cancelled on cleanup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ctx1, cancel1 := context.WithCancel(ctx)
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("w%d", i)
		go func() { _ = RunWorker(ctx1, c1.Addr(), WorkerOptions{Name: name, Slots: 1}) }()
	}
	if err := c1.WaitWorkers(ctx, 3); err != nil {
		restore()
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		spec, _ := json.Marshal(map[string]int{"X": i})
		raw, err := c1.Submit(ctx, "test.double", fmt.Sprintf("test.double|%d|0", i), spec)
		if err != nil {
			restore()
			t.Fatalf("phase 1 granule %d: %v", i, err)
		}
		if want := serialValue(t, "test.double", i, 0); !bytes.Equal(raw, want) {
			restore()
			t.Fatalf("phase 1 granule %d: %q differs from serial %q", i, raw, want)
		}
	}
	restore()
	st1 := c1.Stats()
	if st1.Divergent != 1 || st1.Quarantined != 1 {
		t.Fatalf("phase 1 stats=%+v: want exactly one divergence and one quarantine", st1)
	}
	liars := c1.FleetStats().Quarantined
	if len(liars) != 1 {
		t.Fatalf("quarantine roster=%v, want exactly one liar", liars)
	}

	// kill -9: freeze the journal at this instant. Copying before Close
	// means everything the dying coordinator might still append is
	// invisible to the successor, and shearing the last bytes simulates
	// dying mid-Append — the torn tail replay must tolerate.
	data, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Fatalf("journal only %d bytes; nothing was recorded", len(data))
	}
	if err := os.WriteFile(j2, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	cancel1()
	_ = c1.Close()

	// Phase 2: the successor replays the torn journal.
	c2, err := Listen("127.0.0.1:0", Options{
		InFlight: 2, StraggleAfter: -1, ValidateEvery: 1, JournalPath: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rs := c2.Resumed()
	if rs == nil {
		t.Fatal("successor recovered no journal state")
	}
	if len(rs.Quarantined) != 1 || rs.Quarantined[0] != liars[0] {
		t.Fatalf("resumed quarantine=%v, want %v", rs.Quarantined, liars)
	}
	// The torn tail may have eaten the final record, but most of phase
	// 1's completions must have survived the crash.
	if len(rs.Completed) < 4 {
		t.Fatalf("resumed completions=%d, want >=4", len(rs.Completed))
	}

	// The liar must be refused readmission mid-probation.
	if err := RunWorker(ctx, c2.Addr(), WorkerOptions{Name: liars[0], Slots: 1}); err == nil {
		t.Fatalf("quarantined worker %q was readmitted by the successor", liars[0])
	}

	// Honest workers finish the whole sweep, byte-identical to serial.
	go func() { _ = RunWorker(ctx, c2.Addr(), WorkerOptions{Name: "w4", Slots: 1}) }()
	go func() { _ = RunWorker(ctx, c2.Addr(), WorkerOptions{Name: "w5", Slots: 1}) }()
	if err := c2.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	runIdenticalBatch(t, c2, "test.double", 12, 0)
	st2 := c2.Stats()
	if st2.Completed != 12 {
		t.Fatalf("phase 2 completed=%d, want 12", st2.Completed)
	}
	if st2.Quarantined != 1 {
		t.Fatalf("phase 2 stats=%+v: the carried quarantine was lost", st2)
	}
}

// TestChaosFabricLyingWorkerQuarantined runs a fully cross-validated
// batch with one worker lying once. The lie must never escape into a
// result — every byte matches the serial baseline — and the liar must
// be quarantined on the divergence.
func TestChaosFabricLyingWorkerQuarantined(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(37, faultinject.Rule{
		Point: "fabric.worker.lie", Match: "test.double",
		After: 2, Times: 1, Msg: "chaos: lying worker",
	}))()

	lf, err := StartLocal(3, Options{
		InFlight: 2, StraggleAfter: -1, ValidateEvery: 1,
	}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	runIdenticalBatch(t, lf.C, "test.double", 18, 0)

	st := lf.C.Stats()
	if st.Completed != 18 {
		t.Fatalf("completed=%d, want 18", st.Completed)
	}
	if st.Validated != 18 {
		t.Fatalf("stats=%+v: every granule should have been cross-validated", st)
	}
	if st.Divergent != 1 {
		t.Fatalf("stats=%+v: the lie should have produced exactly one divergence", st)
	}
	if st.Quarantined != 1 {
		t.Fatalf("stats=%+v: the lying worker was never quarantined", st)
	}
}
