package chip_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/chip"
	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

// Fast-forward equivalence properties: a run with quiescent-cycle
// fast-forward enabled must be bit-identical — every counter of every
// component, and every timeline window — to the same run stepped cycle
// by cycle. The suite sweeps the Table I workloads on the single-core
// platform, the multicore NUCA geometries (NoC, L3, coherence
// included), split measurement windows, and mid-run toggling, all with
// the watchdog and a cancellation context armed the way the real
// drivers arm them.

// equivRun executes warm-up plus a measured window on a freshly built
// config and returns the full counter snapshot and timeline series. A
// builder, not a value: a Config embeds stateful trace generators, so
// each run must construct its own. splits > 1 divides the measured
// window into that many Run calls at uneven boundaries, the shape a
// checkpoint/resume or observation-driven driver produces.
func equivRun(t *testing.T, mk func() chip.Config, ff bool, warm, window uint64, splits int) (chip.Report, timeseries.Series) {
	t.Helper()
	ch := chip.New(mk())
	ch.SetFastForward(ff)
	ch.SetContext(context.Background())
	ch.SetWatchdog(2_000_000)
	budget := (warm + window) * 600
	ch.RunUntilRetired(warm, budget)
	ch.ResetCounters()
	ch.EnableTimeseries(timeseries.Config{Width: 2048, MaxWindows: 64})
	remaining := window
	for i := splits; i >= 1; i-- {
		part := remaining / uint64(i)
		if i > 1 {
			part = part/3 + 1 // uneven boundaries, never zero
		}
		ch.Run(part, budget)
		remaining -= part
	}
	ch.FlushTimeseries()
	if err := ch.Err(); err != nil {
		t.Fatalf("run error (ff=%v): %v", ff, err)
	}
	return ch.Snapshot(), ch.Timeseries().Series()
}

// checkEquiv runs the configuration both ways and fails on any
// divergence.
func checkEquiv(t *testing.T, mk func() chip.Config, warm, window uint64, splits int) {
	t.Helper()
	a, sa := equivRun(t, mk, true, warm, window, splits)
	b, sb := equivRun(t, mk, false, warm, window, splits)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot diverged\nff:   %+v\nstep: %+v", a, b)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("timeline diverged\nff:   %+v\nstep: %+v", sa, sb)
	}
}

// TestEquivTable1Workloads: every built-in Table I workload profile on
// the single-core platform.
func TestEquivTable1Workloads(t *testing.T) {
	t.Parallel()
	for _, p := range trace.ProfileNames() {
		p := p
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			checkEquiv(t, func() chip.Config { return chip.SingleCore(p) }, 20000, 5000, 1)
		})
	}
}

// nuca4 builds a 16-core chip with four active cores on mixed
// workloads; variant switches on the optional subsystems.
func nuca4(nocOn, l3On, coherent bool) chip.Config {
	names := []string{"410.bwaves", "429.mcf", "456.hmmer", "403.gcc"}
	gens := make([]trace.Generator, 16)
	for i, n := range names {
		prof := trace.MustProfile(n)
		prof.Seed = uint64(i + 7)
		gens[i*4] = trace.NewSynthetic(prof) // one per L1-size group
	}
	cfg := chip.NUCA16(gens)
	if nocOn {
		n := noc.Default(16)
		cfg.NoC = &n
	}
	if l3On {
		l3 := chip.DefaultL2("L3", 4*chip.MB)
		cfg.L3 = &l3
	}
	if coherent {
		cfg.Coherent = true
		cfg.CoherenceInvalLatency = 8
	}
	return cfg
}

// TestEquivMulticoreVariants: the NUCA platform with each optional
// subsystem in the fast-forward schedule engaged.
func TestEquivMulticoreVariants(t *testing.T) {
	t.Parallel()
	variants := []struct {
		name              string
		noc, l3, coherent bool
		warm, window      uint64
	}{
		{name: "base", warm: 8000, window: 3000},
		{name: "noc", noc: true, warm: 8000, window: 3000},
		{name: "noc-l3", noc: true, l3: true, warm: 8000, window: 3000},
		{name: "coherent", coherent: true, warm: 8000, window: 3000},
		{name: "noc-l3-coherent", noc: true, l3: true, coherent: true, warm: 8000, window: 3000},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			checkEquiv(t, func() chip.Config { return nuca4(v.noc, v.l3, v.coherent) }, v.warm, v.window, 1)
		})
	}
}

// TestEquivSplitWindows: the measured window delivered across several
// Run calls — the checkpoint/resume and timeline-driven shape. Jump
// decisions depend on run-loop entry state, so boundaries must not
// perturb counters.
func TestEquivSplitWindows(t *testing.T) {
	t.Parallel()
	for _, splits := range []int{2, 5} {
		splits := splits
		t.Run(fmt.Sprintf("splits=%d", splits), func(t *testing.T) {
			t.Parallel()
			checkEquiv(t, func() chip.Config { return chip.SingleCore("429.mcf") }, 20000, 5000, splits)
		})
	}
}

// TestEquivToggleMidRun: fast-forward for the first half of the window
// and stepping for the second must equal stepping throughout — a jump
// leaves the exact microstate stepping would have reached.
func TestEquivToggleMidRun(t *testing.T) {
	t.Parallel()
	const warm, window = 20000, 5000

	run := func(toggle bool) (chip.Report, timeseries.Series) {
		ch := chip.New(chip.SingleCore("433.milc"))
		ch.SetFastForward(toggle)
		ch.RunUntilRetired(warm, (warm+window)*600)
		ch.ResetCounters()
		ch.EnableTimeseries(timeseries.Config{Width: 2048, MaxWindows: 64})
		ch.Run(window/2, (warm+window)*600)
		ch.SetFastForward(false)
		ch.Run(window-window/2, (warm+window)*600)
		ch.FlushTimeseries()
		return ch.Snapshot(), ch.Timeseries().Series()
	}
	a, sa := run(true)
	b, sb := run(false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot diverged after mid-run toggle\nff-half: %+v\nstepped: %+v", a, b)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("timeline diverged after mid-run toggle")
	}
}
