package chip

import (
	"testing"

	"lpm/internal/trace"
)

func TestRunReportsIncompleteOnCycleCap(t *testing.T) {
	ch := New(SingleCore("429.mcf"))
	cycles, done := ch.Run(1_000_000, 2000) // far too few cycles
	if done {
		t.Fatal("claimed completion under an impossible budget")
	}
	if cycles > 2100 {
		t.Fatalf("overran the cycle budget: %d", cycles)
	}
}

func TestRunIsIdempotentAfterCompletion(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	_, done := ch.Run(5000, 5_000_000)
	if !done {
		t.Fatal("did not complete")
	}
	before := ch.Snapshot().Cores[0].CPU.Instructions
	// A second Run with the same target: the halted core neither fetches
	// nor retires more.
	ch.Run(5000, 100000)
	after := ch.Snapshot().Cores[0].CPU.Instructions
	if after != before {
		t.Fatalf("halted core kept retiring: %d -> %d", before, after)
	}
}

func TestSnapshotStableWhileIdle(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ch.Run(3000, 5_000_000)
	a := ch.Snapshot()
	ch.RunCycles(1000) // idle ticks after drain
	b := ch.Snapshot()
	if a.Cores[0].L1.Completed != b.Cores[0].L1.Completed {
		t.Fatal("idle ticks changed L1 counters")
	}
	// The memory layer must also be quiet.
	if a.Mem.Reads != b.Mem.Reads {
		t.Fatal("idle ticks generated memory traffic")
	}
}

func TestMixedIdleAndActiveCores(t *testing.T) {
	// Only 3 of 16 cores loaded: the chip must run, drain, and report
	// zeros for the idle slots.
	cfg := NUCA16(nil)
	for i, name := range []string{"401.bzip2", "433.milc", "444.namd"} {
		cfg.Cores[i*4].Workload = trace.NewSynthetic(trace.MustProfile(name))
	}
	ch := New(cfg)
	_, done := ch.Run(4000, 20_000_000)
	if !done {
		t.Fatal("did not complete")
	}
	r := ch.Snapshot()
	for i, cr := range r.Cores {
		active := i == 0 || i == 4 || i == 8
		if active && cr.CPU.Instructions == 0 {
			t.Fatalf("active core %d retired nothing", i)
		}
		if !active && cr.CPU.Instructions != 0 {
			t.Fatalf("idle core %d retired %d", i, cr.CPU.Instructions)
		}
	}
}
