package lpm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"lpm/internal/fabric"
	"lpm/internal/sched"
	"lpm/internal/sim/chip"
)

// Sharding must be invisible in the results: a run fanned out over
// worker processes has to produce byte-identical documents to the serial
// run, at any worker count, through any amount of mid-run churn. The
// comparisons here marshal both sides to JSON first — sharded results
// crossed the wire as JSON, so the document bytes (not in-memory
// nil-vs-empty shapes) are the contract.

// shardScale is a reduced budget for the worker-count sweep: determinism
// does not depend on the scale, and the sweep recomputes everything from
// cold caches at each count.
var shardScale = Scale{Warmup: 20000, Window: 6000}

// buildShardDoc builds the lpm-report/v2 document the sweep compares:
// every Table I configuration plus the Fig. 6/7 profile of all built-in
// workloads at the four NUCA L1 sizes.
func buildShardDoc(t *testing.T) []byte {
	t.Helper()
	rep, err := BuildReport(ReportOptions{
		Scale:       shardScale,
		Experiments: []string{"table1", "fig67"},
	})
	if err != nil {
		t.Fatalf("building report: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return data
}

// startFabric brings up an in-process coordinator with n workers and
// routes this process's simulations through it.
func startFabric(t *testing.T, n int) *fabric.LocalFabric {
	t.Helper()
	lf, err := fabric.StartLocal(n, fabric.Options{StraggleAfter: -1}, fabric.WorkerOptions{Slots: 2})
	if err != nil {
		t.Fatalf("starting %d-worker fabric: %v", n, err)
	}
	return lf
}

// closeFabric tears the fabric down and asserts it actually carried the
// run: a silently-bypassed fabric would make every comparison vacuous.
func closeFabric(t *testing.T, lf *fabric.LocalFabric) {
	t.Helper()
	st := lf.C.Stats()
	if err := lf.Close(); err != nil {
		t.Fatalf("closing fabric: %v", err)
	}
	if st.Completed == 0 {
		t.Fatalf("stats=%+v: no granule went through the fabric", st)
	}
}

func TestShardedReportMatchesSerialAtEveryWorkerCount(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	ResetSimCaches()
	SetWorkers(4)
	serial := buildShardDoc(t)

	for _, n := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			ResetSimCaches() // force real re-simulation through the fabric
			lf := startFabric(t, n)
			defer closeFabric(t, lf)
			sharded := buildShardDoc(t)
			if !bytes.Equal(serial, sharded) {
				t.Fatalf("%d-worker sharded report diverged from serial baseline near line %d",
					n, firstDiffLine(sharded, serial))
			}
		})
	}
}

// TestShardedReportSurvivesWorkerJoinLeave churns the fleet while the
// report builds — a worker joins mid-run, then a founding worker leaves
// (from the coordinator's side, a crash). The document must still come
// out byte-identical: departures only re-queue pure work.
func TestShardedReportSurvivesWorkerJoinLeave(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	ResetSimCaches()
	SetWorkers(4)
	serial := buildShardDoc(t)

	ResetSimCaches()
	lf := startFabric(t, 2)
	defer closeFabric(t, lf)

	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		time.Sleep(20 * time.Millisecond)
		lf.AddWorker(fabric.WorkerOptions{Slots: 2})
		time.Sleep(20 * time.Millisecond)
		// The founding workers are named local-1 and local-2.
		if err := lf.StopWorker("local-1"); err != nil {
			t.Errorf("stopping worker: %v", err)
		}
	}()
	sharded := buildShardDoc(t)
	churn.Wait()

	if !bytes.Equal(serial, sharded) {
		t.Fatalf("sharded report with worker churn diverged from serial baseline near line %d",
			firstDiffLine(sharded, serial))
	}
}

// TestShardedAloneIPCsMatchSerialExactly covers the NUCA multicore
// alone-run kind: the per-workload solo IPCs that normalise every
// scheduler evaluation must shard without drifting a bit.
func TestShardedAloneIPCsMatchSerialExactly(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	names := Workloads()
	sizes := chip.NUCAGroupSizes[:]
	opt := sched.EvalOptions{WindowCycles: 20000, WarmupCycles: 10000}

	run := func(t *testing.T) []byte {
		t.Helper()
		alone, err := sched.AloneIPCs(context.Background(), names, sizes, opt)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(alone)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	ResetSimCaches()
	SetWorkers(1)
	serial := run(t)

	ResetSimCaches()
	lf := startFabric(t, 3)
	defer closeFabric(t, lf)
	sharded := run(t)

	if !bytes.Equal(serial, sharded) {
		t.Fatalf("sharded alone-IPCs diverged from serial baseline:\nserial:  %s\nsharded: %s",
			serial, sharded)
	}
}

// TestShardedTable1MatchesGolden is the acceptance gate: a sharded
// QuickScale Table I run must reproduce the pinned golden file
// byte-for-byte — the same bytes the serial golden test pins.
func TestShardedTable1MatchesGolden(t *testing.T) {
	defer func() { SetWorkers(0); ResetSimCaches() }()

	ResetSimCaches()
	lf := startFabric(t, 2)
	defer closeFabric(t, lf)
	goldenJSON(t, "table1_quick.json", Table1(QuickScale()))
}
