package dram

// Functional-tier warming (see cache.Warmer): the only DRAM state worth
// carrying into a measured phase is which row each bank holds open —
// it decides row hits versus conflicts for the first detailed accesses.
// Queues and bus timing stay untouched.

// warmTouch opens block's row in its bank, as servicing it would.
func (d *DRAM) warmTouch(block uint64) {
	ch := &d.channels[block%uint64(d.cfg.Channels)]
	b := &ch.banks[d.bankOf(block)]
	b.openRow, b.rowValid = d.rowOf(block), true
}

// WarmFetch implements cache.Warmer.
func (d *DRAM) WarmFetch(stamp uint64, src int, block uint64, write bool) {
	_, _, _ = stamp, src, write
	d.warmTouch(block)
}

// WarmWriteback implements cache.Warmer.
func (d *DRAM) WarmWriteback(stamp uint64, src int, block uint64) {
	_, _ = stamp, src
	d.warmTouch(block)
}
