package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Toy granule kinds for harness tests. Registered once for the whole
// test binary; individual tests steer behaviour through the spec.
//
//	test.double  {"X":n}            -> 2n
//	test.sleep   {"X":n,"MS":d}     -> 2n after d milliseconds
//	test.fail    {"Text":s}         -> error with text s
//
// Like the real kinds they are pure functions of the spec, so straggler
// duplicates and re-issues stay sound.
var testExecCount atomic.Int64 // test.double/test.sleep invocations

func init() {
	double := func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		var s struct {
			X  int
			MS int
		}
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		testExecCount.Add(1)
		if s.MS > 0 {
			select {
			case <-time.After(time.Duration(s.MS) * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return json.Marshal(2 * s.X)
	}
	RegisterKind("test.double", double)
	RegisterKind("test.sleep", double)
	RegisterKind("test.fail", func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		var s struct{ Text string }
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%s", s.Text)
	})
}

// submitDouble submits one test.double/test.sleep granule and decodes
// the result.
func submitDouble(ctx context.Context, t *testing.T, c *Coordinator, kind string, x, ms int) (int, error) {
	t.Helper()
	spec, err := json.Marshal(map[string]int{"X": x, "MS": ms})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Submit(ctx, kind, fmt.Sprintf("%s|%d|%d", kind, x, ms), spec)
	if err != nil {
		return 0, err
	}
	var got int
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return got, nil
}

// TestFabricComputesAcrossWorkers pushes a batch of granules through a
// 3-worker local fabric and checks values, single-flight accounting,
// and clean teardown.
func TestFabricComputesAcrossWorkers(t *testing.T) {
	lf, err := StartLocal(3, Options{StraggleAfter: -1}, WorkerOptions{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 20
	var wg sync.WaitGroup
	got := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = submitDouble(ctx, t, lf.C, "test.double", i, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("granule %d: %v", i, errs[i])
		}
		if got[i] != 2*i {
			t.Fatalf("granule %d: got %d, want %d", i, got[i], 2*i)
		}
	}
	st := lf.C.Stats()
	if st.Submitted != n || st.Completed != n {
		t.Fatalf("stats: submitted=%d completed=%d, want %d/%d", st.Submitted, st.Completed, n, n)
	}
	if st.Joined != 3 {
		t.Fatalf("stats: joined=%d, want 3", st.Joined)
	}
	if err := lf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestFabricSingleFlight proves concurrent submissions under one key
// collapse to one granule and one execution.
func TestFabricSingleFlight(t *testing.T) {
	lf, err := StartLocal(2, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	before := testExecCount.Load()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, err := submitDouble(ctx, t, lf.C, "test.sleep", 21, 20); err != nil || got != 42 {
				t.Errorf("got %d, %v; want 42, nil", got, err)
			}
		}()
	}
	wg.Wait()
	if st := lf.C.Stats(); st.Submitted != 1 {
		t.Fatalf("submitted=%d, want 1 (single-flight)", st.Submitted)
	}
	if execs := testExecCount.Load() - before; execs != 1 {
		t.Fatalf("executions=%d, want 1", execs)
	}
}

// TestFabricErrorText proves a worker-side failure comes back with the
// worker's error text verbatim — the property that keeps sharded error
// cells byte-identical to serial ones.
func TestFabricErrorText(t *testing.T) {
	lf, err := StartLocal(1, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	spec, _ := json.Marshal(map[string]string{"Text": "simulate 410.bwaves: livelock at cycle 99"})
	_, err = lf.C.Submit(context.Background(), "test.fail", "fail|1", spec)
	if err == nil || err.Error() != "simulate 410.bwaves: livelock at cycle 99" {
		t.Fatalf("got %v, want the worker's error text verbatim", err)
	}
}

// TestFabricUnknownKind proves a granule for an unregistered kind fails
// with a diagnostic instead of hanging the run.
func TestFabricUnknownKind(t *testing.T) {
	lf, err := StartLocal(1, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	_, err = lf.C.Submit(context.Background(), "test.nope", "nope|1", json.RawMessage(`{}`))
	if err == nil || !strings.Contains(err.Error(), "unknown granule kind") {
		t.Fatalf("got %v, want unknown-kind error", err)
	}
}

// TestFabricWaitsForFirstWorker proves a coordinator with zero workers
// parks granules until one joins, then drains them.
func TestFabricWaitsForFirstWorker(t *testing.T) {
	lf, err := StartLocal(0, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		got, err := submitDouble(ctx, t, lf.C, "test.double", 5, 0)
		if err == nil && got != 10 {
			err = fmt.Errorf("got %d, want 10", got)
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("granule resolved with no workers: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lf.AddWorker(WorkerOptions{})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("granule not drained after worker join")
	}
}

// TestFabricJoinLeave runs a batch while a worker joins mid-run and
// another leaves mid-run; every granule must still resolve correctly.
func TestFabricJoinLeave(t *testing.T) {
	lf, err := StartLocal(1, Options{StraggleAfter: 200 * time.Millisecond}, WorkerOptions{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	ctx := context.Background()
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := submitDouble(ctx, t, lf.C, "test.sleep", i, 10)
			if err == nil && got != 2*i {
				err = fmt.Errorf("got %d, want %d", got, 2*i)
			}
			errs[i] = err
		}(i)
	}
	second := lf.AddWorker(WorkerOptions{Slots: 2})
	if err := lf.C.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := lf.StopWorker(second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("granule %d: %v", i, err)
		}
	}
}

// TestFabricInFlightBudget holds one slow worker and checks the
// coordinator never hands it more than its in-flight budget.
func TestFabricInFlightBudget(t *testing.T) {
	lf, err := StartLocal(1, Options{InFlight: 2, StraggleAfter: -1}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = submitDouble(ctx, t, lf.C, "test.sleep", 100+i, 15)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lf.C.mu.Lock()
		var over int
		for _, w := range lf.C.workers {
			if len(w.inflight) > 2 {
				over = len(w.inflight)
			}
		}
		lf.C.mu.Unlock()
		if over > 0 {
			t.Fatalf("worker holds %d granules, budget is 2", over)
		}
		st := lf.C.Stats()
		if st.Completed == 8 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if st := lf.C.Stats(); st.Completed != 8 {
		t.Fatalf("completed=%d, want 8", st.Completed)
	}
}

// TestFabricCacheProtocol speaks the wire protocol directly as a bare
// worker: handshake, then a cacheget for a key the coordinator has
// already resolved must come back Found with the cached value — the
// shared-memo-over-the-network backend the workers reuse.
func TestFabricCacheProtocol(t *testing.T) {
	lf, err := StartLocal(1, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	ctx := context.Background()
	if got, err := submitDouble(ctx, t, lf.C, "test.double", 8, 0); err != nil || got != 16 {
		t.Fatalf("priming submit: got %d, %v", got, err)
	}

	conn, err := net.Dial("tcp", lf.C.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Msg{Type: MsgHello, Proto: ProtoVersion, Worker: "probe", Slots: 1}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadFrame(conn); err != nil || m.Type != MsgWelcome {
		t.Fatalf("handshake: %v / %+v", err, m)
	}
	if err := WriteFrame(conn, Msg{Type: MsgCacheGet, ID: 99, Key: "test.double|8|0"}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgCacheValue || reply.ID != 99 || !reply.Found || string(reply.Value) != "16" {
		t.Fatalf("cache reply: %+v, want Found with value 16", reply)
	}
	if err := WriteFrame(conn, Msg{Type: MsgCacheGet, ID: 100, Key: "no-such-key"}); err != nil {
		t.Fatal(err)
	}
	reply, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Found {
		t.Fatalf("cache reply for unknown key: %+v, want miss", reply)
	}
	if st := lf.C.Stats(); st.CacheHits != 1 {
		t.Fatalf("cache hits=%d, want 1", st.CacheHits)
	}
}

// TestFabricRejectsBadHandshake proves a wrong-protocol hello and a
// non-hello first frame are both turned away without disturbing the
// coordinator.
func TestFabricRejectsBadHandshake(t *testing.T) {
	lf, err := StartLocal(1, Options{StraggleAfter: -1}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	for _, bad := range []Msg{
		{Type: MsgHello, Proto: ProtoVersion + 1, Worker: "future"},
		{Type: MsgResult, ID: 1},
	} {
		conn, err := net.Dial("tcp", lf.C.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, bad); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrame(conn); err == nil {
			t.Fatalf("handshake %+v: coordinator answered, want connection drop", bad)
		}
		_ = conn.Close()
	}
	if st := lf.C.Stats(); st.Joined != 1 || st.Workers != 1 {
		t.Fatalf("stats after rejects: %+v, want the one real worker only", st)
	}
}

// TestWorkerDialRetry proves a worker launched before its coordinator
// connects once the listener appears.
func TestWorkerDialRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // free the port; the coordinator will take it back

	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		done <- RunWorker(ctx, addr, WorkerOptions{DialRetry: 10 * time.Second})
	}()
	time.Sleep(100 * time.Millisecond)
	c, err := Listen(addr, Options{StraggleAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, 1); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}
