package fabric

// The coordinator side of the fabric: owns the granule queue, the
// shared result cache, and every connected worker. All state lives
// under one mutex; the only goroutines are the TCP accept loop, one
// reader and one writer per connection, and the straggler ticker.
//
// Scheduling invariants:
//
//   - a granule sits in exactly one place: the pending queue (id
//     order) or ≥1 workers' in-flight sets — never both;
//   - the pending queue is popped lowest-id-first, so earlier
//     submissions are never starved by later ones;
//   - a dead worker's granules are re-queued (unless another holder
//     survives) and re-issued;
//   - a straggling granule is duplicated onto an idle worker; the
//     first result wins and later duplicates are ignored, which is
//     sound because executors are pure functions of the spec.
//
// None of this affects result *values* or merge order: the driver
// consumes results through Submit in its own deterministic order, so
// scheduling is free to be opportunistic.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/obs"
)

// ErrCoordinatorClosed is returned by Submit when the coordinator shuts
// down with the granule still unresolved.
var ErrCoordinatorClosed = errors.New("fabric: coordinator closed")

// Options configure a coordinator.
type Options struct {
	// InFlight is the per-worker in-flight budget: how many granules a
	// worker may hold at once. Defaults to 2 — one executing, one
	// queued behind it so the worker never idles waiting on the wire.
	InFlight int
	// StraggleAfter is how long a granule may be held without a result
	// before it is duplicated onto an idle worker. 0 means the 30s
	// default; negative disables straggler re-issue.
	StraggleAfter time.Duration
	// Log receives structured coordinator diagnostics (worker joins,
	// deaths, re-issues) with worker/granule attrs; nil discards them.
	Log *slog.Logger
	// Obs, when set, receives the coordinator's fabric telemetry —
	// queue depth, per-worker in-flight, re-queue and straggler churn,
	// cache hit rate. Nil (the default) keeps every probe a nil-receiver
	// no-op, so instrumentation is zero-cost when observability is off.
	Obs *obs.Registry
}

// Stats is a snapshot of coordinator counters for tests and the CLIs.
type Stats struct {
	Workers    int // currently connected workers
	Joined     int // handshakes accepted over the coordinator's lifetime
	Submitted  int // distinct granules submitted
	Completed  int // granules resolved
	Requeued   int // granules re-queued after a worker died holding them
	Duplicated int // straggler duplicates issued
	CacheHits  int // worker cache probes answered from the shared cache
}

// granule is one unit of work: a (kind, key, spec) triple plus its
// resolution. done closes exactly once, after which value/errText are
// immutable.
type granule struct {
	id   uint64
	kind string
	key  string
	spec json.RawMessage

	done    chan struct{}
	value   json.RawMessage
	errText string

	queued   bool      // sitting in Coordinator.pending
	holders  int       // workers currently holding it in-flight
	issuedAt time.Time // last issuance, for straggler aging
}

// resolved reports whether the granule has a result.
func (g *granule) resolved() bool {
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	name     string
	conn     net.Conn
	slots    int // worker-declared execution concurrency (informational)
	inflight map[uint64]*granule
	outbox   chan Msg
	dead     bool
}

// Coordinator accepts workers and brokers granules between Submit
// callers and the worker fleet.
type Coordinator struct {
	opts Options
	ln   net.Listener

	mu      sync.Mutex
	nextID  uint64
	byKey   map[string]*granule
	byID    map[uint64]*granule
	order   []*granule // submission order; straggler scans walk this, never a map
	pending []*granule // dispatch queue, ascending id
	workers []*remoteWorker
	stats   Stats
	tel     *Telemetry // nil when Options.Obs is nil; updates under mu

	closed    chan struct{}
	closeOnce sync.Once
	loops     sync.WaitGroup
}

// Listen starts a coordinator on addr (e.g. "127.0.0.1:0") and begins
// accepting workers immediately. Close releases everything.
func Listen(addr string, opts Options) (*Coordinator, error) {
	if opts.InFlight <= 0 {
		opts.InFlight = 2
	}
	if opts.StraggleAfter == 0 {
		opts.StraggleAfter = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	c := &Coordinator{
		opts:   opts,
		ln:     ln,
		byKey:  make(map[string]*granule),
		byID:   make(map[uint64]*granule),
		tel:    NewTelemetry(opts.Obs),
		closed: make(chan struct{}),
	}
	c.loops.Add(1)
	go c.acceptLoop()
	if opts.StraggleAfter > 0 {
		c.loops.Add(1)
		go c.straggleLoop()
	}
	return c, nil
}

// Addr returns the coordinator's bound listen address, for handing to
// workers (and for tests that listen on port 0).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close shuts the coordinator down: the listener closes, every worker
// connection drops, and pending Submit calls fail with
// ErrCoordinatorClosed. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		_ = c.ln.Close()
		c.mu.Lock()
		workers := append([]*remoteWorker(nil), c.workers...)
		c.mu.Unlock()
		for _, w := range workers {
			c.workerGone(w, errors.New("coordinator closing"))
		}
	})
	c.loops.Wait()
	return nil
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ObsSnapshot captures the coordinator's fabric telemetry (nil when no
// Obs registry was configured). The snapshot is taken under the
// coordinator mutex, the same lock every telemetry update holds, so it
// is consistent and safe to call from serving goroutines.
func (c *Coordinator) ObsSnapshot() *obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Obs.Snapshot()
}

// WaitWorkers blocks until at least n workers are connected, ctx
// cancels, or the coordinator closes.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		have := c.stats.Workers
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: waiting for %d workers (have %d): %w", n, have, ctx.Err())
		case <-c.closed:
			return ErrCoordinatorClosed
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Submit resolves one granule: an existing result (or in-flight
// computation) under the same key is shared single-flight, otherwise
// the granule is queued for dispatch. Blocks until the granule
// resolves, ctx cancels, or the coordinator closes. Remote failures
// come back as errors carrying the worker-side error text verbatim, so
// a sharded run's error cells match a serial run's byte-for-byte.
func (c *Coordinator) Submit(ctx context.Context, kind, key string, spec json.RawMessage) (json.RawMessage, error) {
	c.mu.Lock()
	g, ok := c.byKey[key]
	if !ok {
		g = &granule{
			id:   c.nextID,
			kind: kind,
			key:  key,
			spec: spec,
			done: make(chan struct{}),
		}
		c.nextID++
		c.byKey[key] = g
		c.byID[g.id] = g
		c.order = append(c.order, g)
		c.stats.Submitted++
		c.tel.Submitted()
		c.enqueueLocked(g)
		c.dispatchLocked()
	}
	c.mu.Unlock()

	select {
	case <-g.done:
		if g.errText != "" {
			return nil, errors.New(g.errText)
		}
		return g.value, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closed:
		return nil, ErrCoordinatorClosed
	}
}

// enqueueLocked inserts g into the pending queue keeping ascending-id
// order, so re-queued granules rejoin at their original priority.
func (c *Coordinator) enqueueLocked(g *granule) {
	g.queued = true
	i := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].id > g.id })
	c.pending = append(c.pending, nil)
	copy(c.pending[i+1:], c.pending[i:])
	c.pending[i] = g
}

// dispatchLocked hands pending granules to workers with free budget,
// lowest id first, walking workers in join order.
func (c *Coordinator) dispatchLocked() {
	for _, w := range c.workers {
		for !w.dead && len(w.inflight) < c.opts.InFlight && len(c.pending) > 0 {
			g := c.pending[0]
			c.pending = c.pending[1:]
			g.queued = false
			if g.resolved() {
				continue
			}
			c.issueLocked(w, g)
		}
	}
	c.tel.SyncQueue(c.workers, len(c.pending))
}

// issueLocked sends g to w and records the holding.
func (c *Coordinator) issueLocked(w *remoteWorker, g *granule) {
	w.inflight[g.id] = g
	g.holders++
	g.issuedAt = time.Now()
	c.sendLocked(w, Msg{Type: MsgWork, ID: g.id, Kind: g.kind, Key: g.key, Spec: g.spec})
}

// sendLocked enqueues m on w's outbox. A full outbox means the worker
// stopped draining its socket; it is dropped like a dead one (from a
// fresh goroutine — workerGone retakes the mutex).
func (c *Coordinator) sendLocked(w *remoteWorker, m Msg) {
	if w.dead {
		return
	}
	select {
	case w.outbox <- m:
	default:
		go c.workerGone(w, errors.New("outbox overflow: worker not draining its connection"))
	}
}

// acceptLoop admits worker connections until the listener closes.
func (c *Coordinator) acceptLoop() {
	defer c.loops.Done()
	for {
		//lint:ignore ctxflow Close() closes the listener, which fails this Accept
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed (Close) or terminally broken
		}
		go c.serveConn(conn)
	}
}

// serveConn runs the handshake and then the read loop for one worker
// connection. Any protocol violation or read error drops the worker.
func (c *Coordinator) serveConn(conn net.Conn) {
	hello, err := ReadFrame(conn)
	if err != nil || hello.Type != MsgHello {
		c.log().Warn("fabric: rejecting connection: bad handshake",
			"remote", fmt.Sprint(conn.RemoteAddr()), "err", fmt.Sprint(err))
		_ = conn.Close()
		return
	}
	if hello.Proto != ProtoVersion {
		c.log().Warn("fabric: rejecting worker: protocol mismatch",
			"worker", hello.Worker, "proto", hello.Proto, "want", ProtoVersion)
		_ = conn.Close()
		return
	}

	w := &remoteWorker{
		name:     hello.Worker,
		conn:     conn,
		slots:    hello.Slots,
		inflight: make(map[uint64]*granule),
		outbox:   make(chan Msg, 4*c.opts.InFlight+16),
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		_ = conn.Close()
		return
	default:
	}
	c.workers = append(c.workers, w)
	c.stats.Workers++
	c.stats.Joined++
	c.tel.Joined()
	go c.writeLoop(w)
	c.sendLocked(w, Msg{Type: MsgWelcome, Proto: ProtoVersion})
	c.dispatchLocked()
	c.mu.Unlock()
	c.log().Info("fabric: worker joined",
		"worker", w.name, "slots", w.slots, "remote", fmt.Sprint(conn.RemoteAddr()))

	for {
		//lint:ignore ctxflow Close() and workerGone close the conn, which fails this read
		m, err := ReadFrame(conn)
		if err != nil {
			c.workerGone(w, err)
			return
		}
		switch m.Type {
		case MsgResult:
			c.handleResult(m)
		case MsgCacheGet:
			c.handleCacheGet(w, m)
		default:
			c.workerGone(w, fmt.Errorf("unexpected %q frame from worker", m.Type))
			return
		}
	}
}

// writeLoop drains w's outbox onto the wire; a write failure drops the
// worker.
func (c *Coordinator) writeLoop(w *remoteWorker) {
	for m := range w.outbox {
		if err := WriteFrame(w.conn, m); err != nil {
			c.workerGone(w, err)
			return
		}
	}
}

// handleResult resolves a granule from a worker result frame. Late
// duplicates (straggler re-issues, results racing a death notice) are
// ignored: the first result wins, and purity makes every duplicate
// identical anyway.
func (c *Coordinator) handleResult(m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.byID[m.ID]
	if !ok {
		return
	}
	if g.resolved() {
		c.tel.LateResult()
		return
	}
	g.value = m.Value
	g.errText = m.Error
	close(g.done)
	c.stats.Completed++
	c.tel.Completed(time.Since(g.issuedAt))
	// Free the granule from every holder so their budgets open up.
	for _, w := range c.workers {
		if _, held := w.inflight[g.id]; held {
			delete(w.inflight, g.id)
			g.holders--
		}
	}
	c.dispatchLocked()
}

// handleCacheGet answers a worker's probe of the shared result cache:
// the coordinator's resolved granules ARE the cache (they are what the
// driver's content-keyed memos produced and consumed).
func (c *Coordinator) handleCacheGet(w *remoteWorker, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reply := Msg{Type: MsgCacheValue, ID: m.ID}
	if g, ok := c.byKey[m.Key]; ok && g.resolved() {
		reply.Found = true
		reply.Value = g.value
		reply.Error = g.errText
		c.stats.CacheHits++
	}
	c.tel.CacheProbe(reply.Found)
	c.sendLocked(w, reply)
}

// workerGone removes a dead worker: closes its connection and outbox,
// re-queues every granule it alone held, and re-dispatches. Idempotent.
func (c *Coordinator) workerGone(w *remoteWorker, cause error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	close(w.outbox)
	_ = w.conn.Close()
	for i, ww := range c.workers {
		if ww == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.stats.Workers--
	ids := make([]uint64, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	requeued := 0
	for _, id := range ids {
		g := w.inflight[id]
		g.holders--
		if g.resolved() || g.holders > 0 || g.queued {
			continue
		}
		c.enqueueLocked(g)
		c.stats.Requeued++
		requeued++
	}
	w.inflight = nil
	c.tel.WorkerGone(w.name, requeued)
	c.dispatchLocked()
	c.mu.Unlock()
	c.log().Warn("fabric: worker gone",
		"worker", w.name, "cause", fmt.Sprint(cause), "requeued", requeued)
}

// straggleLoop periodically duplicates aged in-flight granules onto
// idle workers. The first result wins; duplicates are pure-function
// identical, so this trades a little wasted compute for tail latency
// and hang immunity.
func (c *Coordinator) straggleLoop() {
	defer c.loops.Done()
	period := c.opts.StraggleAfter / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-ticker.C:
			c.reissueStragglers()
		}
	}
}

// reissueStragglers walks granules in submission order and duplicates
// any aged one onto a worker with free budget that is not already
// holding it.
func (c *Coordinator) reissueStragglers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for _, g := range c.order {
		if g.resolved() || g.queued || g.holders == 0 {
			continue
		}
		if now.Sub(g.issuedAt) < c.opts.StraggleAfter {
			continue
		}
		for _, w := range c.workers {
			if w.dead || len(w.inflight) >= c.opts.InFlight {
				continue
			}
			if _, held := w.inflight[g.id]; held {
				continue
			}
			c.issueLocked(w, g)
			c.stats.Duplicated++
			c.tel.Duplicated()
			c.tel.SyncQueue(c.workers, len(c.pending))
			c.log().Info("fabric: straggler duplicated",
				"granule", g.id, "kind", g.kind, "worker", w.name)
			break
		}
	}
}

// log returns the coordinator's structured logger (discard when none
// was configured).
func (c *Coordinator) log() *slog.Logger {
	return cliutil.LoggerOrDiscard(c.opts.Log)
}
