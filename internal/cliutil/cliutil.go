// Package cliutil holds the small helpers shared by the cmd/
// front-ends.
//
// Printer implements the errWriter idiom for the CLIs' report
// printers: they emit dozens of formatted lines, and checking every
// fmt.Fprintf individually would drown the formatting in plumbing.
// Printer remembers the first write error and makes every later print a
// no-op, so a printer function writes its whole report and returns
// p.Err() once. This is what makes `lpmreport | head` exit non-zero on
// EPIPE instead of silently truncating: the errcheck-lite lint rule
// forbids dropping io/encoding write errors in cmd/, and Printer is the
// sanctioned way to satisfy it.
package cliutil

import (
	"fmt"
	"io"
)

// Printer wraps an io.Writer, latching the first write error.
type Printer struct {
	w   io.Writer
	err error
}

// NewPrinter returns a Printer writing to w.
func NewPrinter(w io.Writer) *Printer { return &Printer{w: w} }

// Printf formats to the underlying writer unless an earlier write
// failed.
func (p *Printer) Printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// Println writes its arguments and a newline unless an earlier write
// failed.
func (p *Printer) Println(args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, args...)
	}
}

// Err returns the first write error, nil if every write succeeded.
func (p *Printer) Err() error { return p.err }
