package dram

import (
	"testing"
)

func cfg() Config {
	c := DDR3("mem-test")
	c.Channels = 1
	c.BanksPerChannel = 2
	return c
}

// run drives the DRAM until pred or budget cycles elapse.
func run(d *DRAM, now *uint64, pred func() bool, budget int) bool {
	for i := 0; i < budget; i++ {
		if pred() {
			return true
		}
		*now++
		d.Tick(*now)
	}
	return pred()
}

func TestConfigValidate(t *testing.T) {
	good := cfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = 0 },
		func(c *Config) { c.RowBlocks = 0 },
		func(c *Config) { c.TCL = 0 },
		func(c *Config) { c.TBurst = -1 },
		func(c *Config) { c.QueueDepth = 0 },
	}
	for i, mut := range bads {
		c := cfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestReadCompletesWithClosedRowLatency(t *testing.T) {
	d := New(cfg())
	var now uint64
	var doneAt uint64
	d.Request(now, 0, 0, false, func(c uint64) { doneAt = c })
	if !run(d, &now, func() bool { return doneAt != 0 }, 1000) {
		t.Fatal("read never completed")
	}
	want := uint64(cfg().TRCD + cfg().TCL + cfg().TBurst)
	if doneAt < want || doneAt > want+2 {
		t.Fatalf("closed-row read latency %d, want ~%d", doneAt, want)
	}
	if st := d.Stats(); st.RowMisses != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowBufferHitFaster(t *testing.T) {
	d := New(cfg())
	var now uint64
	var t1, t2 uint64
	d.Request(now, 0, 0, false, func(c uint64) { t1 = c })
	run(d, &now, func() bool { return t1 != 0 }, 1000)
	issueAt := now
	d.Request(now, 0, 2, false, func(c uint64) { t2 = c }) // same bank 0, same row 0
	run(d, &now, func() bool { return t2 != 0 }, 1000)
	lat2 := t2 - issueAt
	want := uint64(cfg().TCL + cfg().TBurst)
	if lat2 < want || lat2 > want+2 {
		t.Fatalf("row-hit latency %d, want ~%d", lat2, want)
	}
	if st := d.Stats(); st.RowHits != 1 {
		t.Fatalf("row hits = %d, want 1", st.RowHits)
	}
}

func TestRowConflictSlower(t *testing.T) {
	d := New(cfg())
	var now uint64
	var t1, t2 uint64
	d.Request(now, 0, 0, false, func(c uint64) { t1 = c })
	run(d, &now, func() bool { return t1 != 0 }, 1000)
	issueAt := now
	// Same bank (channel 0, bank 0: block multiple of 2 with 1 channel,
	// 2 banks), different row: block 256 is row 2, bank 0.
	d.Request(now, 0, 256, false, func(c uint64) { t2 = c })
	run(d, &now, func() bool { return t2 != 0 }, 1000)
	lat2 := t2 - issueAt
	want := uint64(cfg().TRP + cfg().TRCD + cfg().TCL + cfg().TBurst)
	if lat2 < want || lat2 > want+2 {
		t.Fatalf("row-conflict latency %d, want ~%d", lat2, want)
	}
	if st := d.Stats(); st.RowConflicts != 1 {
		t.Fatalf("row conflicts = %d, want 1", st.RowConflicts)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	elapsed := func(blockB uint64) uint64 {
		d := New(cfg())
		var now uint64
		var done int
		d.Request(now, 0, 0, false, func(uint64) { done++ })
		d.Request(now, 0, blockB, false, func(uint64) { done++ })
		run(d, &now, func() bool { return done == 2 }, 5000)
		return now
	}
	diffBank := elapsed(1<<20 + 1) // odd block -> bank 1, far row
	sameBank := elapsed(1 << 20)   // even block -> bank 0, far row (conflict)
	if diffBank >= sameBank {
		t.Fatalf("bank parallelism not faster: diff=%d same=%d", diffBank, sameBank)
	}
}

func TestChannelQueueBackpressure(t *testing.T) {
	c := cfg()
	c.QueueDepth = 2
	d := New(c)
	ok := 0
	for i := 0; i < 5; i++ {
		if d.Request(0, 0, uint64(i*2), false, func(uint64) {}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d, want 2", ok)
	}
	if st := d.Stats(); st.Rejected != 3 {
		t.Fatalf("rejected = %d", st.Rejected)
	}
}

func TestWritesCompleteSilently(t *testing.T) {
	d := New(cfg())
	var now uint64
	d.Request(now, 0, 0, true, nil)
	run(d, &now, func() bool { return !d.Busy() }, 1000)
	if st := d.Stats(); st.Writes != 1 || st.Reads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	c := cfg()
	c.Scheduler = FRFCFS
	d := New(c)
	var now uint64
	// Open row 0 on bank 0.
	var warm uint64
	d.Request(now, 0, 0, false, func(cy uint64) { warm = cy })
	run(d, &now, func() bool { return warm != 0 }, 1000)
	// Queue a row-conflict first, then a row-hit; FR-FCFS should finish
	// the row-hit first.
	var conflictAt, hitAt uint64
	d.Request(now, 0, 256, false, func(cy uint64) { conflictAt = cy }) // bank 0, other row
	d.Request(now, 0, 2, false, func(cy uint64) { hitAt = cy })        // bank 0, row 0
	run(d, &now, func() bool { return conflictAt != 0 && hitAt != 0 }, 5000)
	if hitAt >= conflictAt {
		t.Fatalf("FR-FCFS served conflict (%d) before row hit (%d)", conflictAt, hitAt)
	}

	// FCFS serves in order.
	c.Scheduler = FCFS
	d2 := New(c)
	now = 0
	warm = 0
	d2.Request(now, 0, 0, false, func(cy uint64) { warm = cy })
	run(d2, &now, func() bool { return warm != 0 }, 1000)
	conflictAt, hitAt = 0, 0
	d2.Request(now, 0, 256, false, func(cy uint64) { conflictAt = cy })
	d2.Request(now, 0, 2, false, func(cy uint64) { hitAt = cy })
	run(d2, &now, func() bool { return conflictAt != 0 && hitAt != 0 }, 5000)
	if hitAt <= conflictAt {
		t.Fatalf("FCFS reordered: conflict at %d, hit at %d", conflictAt, hitAt)
	}
}

func TestContentionRaisesLatency(t *testing.T) {
	// Average read latency under a burst of random requests must exceed
	// the uncontended closed-row latency: queueing is modelled.
	d := New(cfg())
	var now uint64
	var done int
	n := 16
	for i := 0; i < n; i++ {
		d.Request(now, 0, uint64(i*997)%4096, false, func(uint64) { done++ })
	}
	run(d, &now, func() bool { return done == n }, 20000)
	uncontended := float64(cfg().TRCD + cfg().TCL + cfg().TBurst)
	if avg := d.Stats().AvgReadLatency(); avg <= uncontended {
		t.Fatalf("avg latency %.1f under burst, want > %.1f", avg, uncontended)
	}
}

func TestResetCounters(t *testing.T) {
	d := New(cfg())
	var now uint64
	var fin uint64
	d.Request(now, 0, 0, false, func(cy uint64) { fin = cy })
	run(d, &now, func() bool { return fin != 0 }, 1000)
	d.ResetCounters()
	if st := d.Stats(); st.Reads != 0 || st.RowMisses != 0 {
		t.Fatal("counters survive reset")
	}
}

func TestSchedString(t *testing.T) {
	if FCFS.String() != "FCFS" || FRFCFS.String() != "FR-FCFS" {
		t.Fatal("bad scheduler names")
	}
	if Sched(7).String() == "" {
		t.Fatal("unknown scheduler empty")
	}
}

func TestFixedMemoryLatency(t *testing.T) {
	f := &Fixed{Latency: 7}
	var doneAt uint64
	f.Request(3, 0, 0, false, func(c uint64) { doneAt = c })
	for cy := uint64(4); cy <= 20 && doneAt == 0; cy++ {
		f.Tick(cy)
	}
	if doneAt != 10 {
		t.Fatalf("fixed latency done at %d, want 10", doneAt)
	}
}

func TestFixedBandwidthLimit(t *testing.T) {
	f := &Fixed{Latency: 1, PerCycle: 2}
	ok := 0
	for i := 0; i < 5; i++ {
		if f.Request(1, 0, uint64(i), false, func(uint64) {}) {
			ok++
		}
	}
	if ok != 2 {
		t.Fatalf("accepted %d in one cycle, want 2", ok)
	}
	// Next cycle the window resets.
	if !f.Request(2, 0, 9, false, func(uint64) {}) {
		t.Fatal("bandwidth window did not reset")
	}
}

func TestDDR3DefaultsValid(t *testing.T) {
	c := DDR3("x")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
