// Package ctrl is the fixture's control plane: run-submission retries
// and jitter sourcing.
package ctrl

import (
	"context"
	"math/rand"
	"net"
	"time"

	"lpm/internal/resilience/fleet"
)

// badJitter draws retry jitter from the global RNG: unseeded, so two
// runs of the same sweep back off differently.
func badJitter(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) // want "math/rand in the fleet layer"
}

// badSubmitRetry re-dials the control listener with a bare sleep.
func badSubmitRetry(addr string) {
	for {
		if _, err := net.Dial("tcp", addr); err == nil {
			return
		}
		time.Sleep(250 * time.Millisecond) // want "hand-rolled retry pacing"
	}
}

// goodSubmitRetry paces through the shared policy.
func goodSubmitRetry(ctx context.Context, addr string, policy fleet.RetryPolicy) {
	for attempt := 0; ; attempt++ {
		if _, err := net.Dial("tcp", addr); err == nil {
			return
		}
		if err := policy.Sleep(ctx, attempt); err != nil {
			return
		}
	}
}
