package obs

import (
	"strings"
	"testing"
)

func TestWritePromText(t *testing.T) {
	r := NewRegistry()
	r.Counter("l1.0.hits").Add(42)
	r.Gauge("dram.bus_util").Set(0.75)
	h := r.Histogram("mem.read_latency", 0, 100, 10)
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	var b strings.Builder
	if err := r.Snapshot().WritePromText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lpm_dram_bus_util gauge\nlpm_dram_bus_util 0.75\n",
		"# TYPE lpm_l1_0_hits counter\nlpm_l1_0_hits 42\n",
		"# TYPE lpm_mem_read_latency summary\n",
		"lpm_mem_read_latency{quantile=\"0.5\"} ",
		"lpm_mem_read_latency_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be name<space>value with a sane name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Errorf("malformed line %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if strings.ContainsAny(name, ".-") || !strings.HasPrefix(name, "lpm_") {
			t.Errorf("invalid metric name %q", name)
		}
	}
}

func TestWritePromTextNilSnapshot(t *testing.T) {
	var s *Snapshot
	var b strings.Builder
	if err := s.WritePromText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil snapshot wrote %q, err %v", b.String(), err)
	}
}
