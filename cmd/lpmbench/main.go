// Command lpmbench measures the simulator core's throughput and pins it
// to the repository as BENCH_core.json (schema lpm-bench/v1). Three
// engines are timed on the same fixed workload:
//
//   - detailed_stepped: the cycle-accurate engine with quiescent-cycle
//     fast-forward disabled — every cycle ticked.
//   - detailed_fastforward: the same engine with fast-forward enabled —
//     the default production configuration.
//   - functional: the warm-up tier (RunFunctional), in rounds/sec.
//
// Usage:
//
//	lpmbench                    # print the measurement
//	lpmbench -o BENCH_core.json # pin it (atomic rewrite)
//	lpmbench -check BENCH_core.json
//
// -check re-measures and compares the relative speedups — fast-forward
// over stepped, functional over stepped — against the pinned file,
// failing (exit 1) when a fresh ratio drops below 80% of the pinned one
// (>20% regression). Ratios, not absolute rates, are compared: absolute
// cycles/sec varies machine to machine, while the speedup the
// event-driven core delivers over its own stepped baseline is the
// invariant this gate protects.
//
// Beyond the engine rates the document also pins the control-plane
// serve path (serve_scrape_seconds — one fleet /metrics scrape), the
// instrumentation tax (instrumentation_overhead — obs sampler, fabric
// telemetry probes, serve scrape as fractions, 0.01 = 1%), and the
// fleet's crash-recovery latency (fleet_recover_seconds — coordinator
// kill to first post-resume granule completion through the journal
// replay path). The overheads are trend lines; fleet_recover_seconds
// joins the engine speedups under the -check gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/ctrl"
	"lpm/internal/fabric"
	"lpm/internal/lint"
	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
	"lpm/internal/resilience"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// Schema identifies the document format.
const Schema = "lpm-bench/v1"

// benchWorkload is the pinned measurement workload: the memory-bound
// 429.mcf on the NUCA standalone-reference platform — the exact
// configuration the Fig. 6-8 profiling and alone-IPC runs use, which
// dominate the report's wall-clock.
const benchWorkload = "429.mcf"

// benchConfig builds one fresh measurement chip.
func benchConfig() chip.Config {
	prof := trace.MustProfile(benchWorkload)
	return chip.NUCASingle(trace.NewSynthetic(prof), 64*chip.KB)
}

// Document is the pinned benchmark file.
type Document struct {
	Schema   string `json:"schema"`
	Commit   string `json:"commit"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	CPUs     int    `json:"cpus"`
	Workload string `json:"workload"`
	// Cycles is the measured span per repetition; Reps repetitions run
	// and the best (least-interfered) rate is kept.
	Cycles uint64 `json:"cycles"`
	Reps   int    `json:"reps"`
	// CyclesPerSec are best-of-reps simulated cycles (functional:
	// rounds) per wall-clock second, per engine.
	CyclesPerSec map[string]float64 `json:"cycles_per_sec"`
	// LintSeconds is the wall-clock of a full-suite lpmlint run over the
	// module: "cold" with an empty load cache, "warm" the no-change
	// re-run through the content-keyed cache. Recorded for trend
	// watching; the -check gate compares only the engine speedups.
	LintSeconds map[string]float64 `json:"lint_seconds,omitempty"`
	// ServeScrapeSeconds is the best-of-reps mean wall-clock of one
	// fleet /metrics scrape against a control-plane registry carrying
	// three finished runs with published snapshots.
	ServeScrapeSeconds float64 `json:"serve_scrape_seconds,omitempty"`
	// FleetRecoverSeconds is the best-of-reps wall-clock from killing a
	// journaling coordinator mid-sweep to the first granule completion
	// on its successor: journal replay, listener re-bind, worker
	// redial+handshake, and one granule round trip, end to end.
	FleetRecoverSeconds float64 `json:"fleet_recover_seconds,omitempty"`
	// Overhead pins the instrumentation tax as fractions (0.01 = 1%):
	// sampler_publish (the per-window control-plane publish sequence
	// over one window's wall-clock), fabric_telemetry (one granule's
	// probe sequence over one bench-sized granule's wall-clock),
	// serve_scrape (one fleet scrape against a 1 Hz scrape cadence).
	// Trend lines, not gated.
	Overhead map[string]float64 `json:"instrumentation_overhead,omitempty"`
}

// errRegression signals a clean run that found a regression.
var errRegression = errors.New("benchmark regression")

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errRegression):
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "pin the measurement to this JSON file (atomic rewrite)")
		check   = fs.String("check", "", "re-measure and fail on a >20% speedup regression against this pinned file")
		cycles  = fs.Uint64("cycles", 400000, "simulated cycles (functional: rounds) per repetition")
		reps    = fs.Int("reps", 3, "repetitions per engine; the best rate is kept")
		lintDir = fs.String("lintdir", ".", "module to time lpmlint over (empty or no go.mod: skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cycles == 0 || *reps <= 0 {
		return fmt.Errorf("lpmbench: -cycles and -reps must be positive")
	}

	doc, err := measure(ctx, *cycles, *reps)
	if err != nil {
		return err
	}
	if err := measureLint(ctx, *lintDir, doc); err != nil {
		return err
	}
	if err := measureServe(ctx, doc, *reps); err != nil {
		return err
	}
	if err := measureOverhead(ctx, doc, *reps); err != nil {
		return err
	}
	if err := measureFleetRecover(ctx, doc, *reps); err != nil {
		return err
	}
	p := cliutil.NewPrinter(stdout)
	p.Printf("lpmbench: %s on %s/%s (%d cpus), %d cycles x %d reps\n",
		benchWorkload, doc.OS, doc.Arch, doc.CPUs, doc.Cycles, doc.Reps)
	for _, k := range []string{"detailed_stepped", "detailed_fastforward", "functional"} {
		p.Printf("  %-21s %12.0f cycles/sec (%.2fx stepped)\n",
			k, doc.CyclesPerSec[k], doc.CyclesPerSec[k]/doc.CyclesPerSec["detailed_stepped"])
	}
	if doc.LintSeconds != nil {
		p.Printf("  %-21s cold %.2fs, warm %.3fs (%.0fx)\n",
			"lint", doc.LintSeconds["cold"], doc.LintSeconds["warm"],
			doc.LintSeconds["cold"]/doc.LintSeconds["warm"])
	}
	p.Printf("  %-21s %12.6f sec/scrape\n", "serve_fleet_metrics", doc.ServeScrapeSeconds)
	p.Printf("  %-21s %12.6f sec/recover\n", "fleet_recover", doc.FleetRecoverSeconds)
	if doc.Overhead != nil {
		p.Printf("  overhead: sampler_publish %.4f%%, fabric_telemetry %.4f%%, serve_scrape %.4f%%\n",
			100*doc.Overhead["sampler_publish"], 100*doc.Overhead["fabric_telemetry"],
			100*doc.Overhead["serve_scrape"])
	}
	if err := p.Err(); err != nil {
		return err
	}

	if *check != "" {
		if err := checkAgainst(*check, doc, stdout); err != nil {
			return err
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return cliutil.AtomicWriteFile(*out, append(data, '\n'), 0o644)
	}
	return nil
}

// measure times the three engines.
func measure(ctx context.Context, cycles uint64, reps int) (*Document, error) {
	doc := &Document{
		Schema:       Schema,
		Commit:       gitCommit(),
		Date:         time.Now().UTC().Format("2006-01-02"),
		Go:           runtime.Version(),
		OS:           runtime.GOOS,
		Arch:         runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workload:     benchWorkload + " on the NUCA standalone-reference platform (64 KB L1)",
		Cycles:       cycles,
		Reps:         reps,
		CyclesPerSec: map[string]float64{},
	}
	engines := []struct {
		name string
		run  func(*chip.Chip, uint64)
		prep func(*chip.Chip)
	}{
		{name: "detailed_stepped",
			prep: func(ch *chip.Chip) { ch.SetFastForward(false) },
			run:  func(ch *chip.Chip, n uint64) { ch.RunCycles(n) }},
		{name: "detailed_fastforward",
			prep: func(ch *chip.Chip) {},
			run:  func(ch *chip.Chip, n uint64) { ch.RunCycles(n) }},
		{name: "functional",
			prep: func(ch *chip.Chip) { ch.SetTier(chip.TierFunctional) },
			run:  func(ch *chip.Chip, n uint64) { _ = ch.RunFunctional(n) }},
	}
	for _, e := range engines {
		best := 0.0
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ch := chip.New(benchConfig())
			ch.SetContext(ctx)
			e.prep(ch)
			start := time.Now()
			e.run(ch, cycles)
			elapsed := time.Since(start).Seconds()
			if err := ch.Err(); err != nil {
				return nil, fmt.Errorf("lpmbench %s: %w", e.name, err)
			}
			if rate := float64(cycles) / elapsed; rate > best {
				best = rate
			}
		}
		doc.CyclesPerSec[e.name] = best
	}
	return doc, nil
}

// measureLint times a full-suite lpmlint pass over the module at dir,
// cold and then warm: the first lint.Run in a process loads with an
// empty content-keyed cache, the second is the no-change re-run. A
// missing go.mod (lpmbench run outside a module) skips silently;
// findings don't fail the benchmark — `make lint` is that gate.
func measureLint(ctx context.Context, dir string, doc *Document) error {
	if dir == "" {
		return nil
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cold, err := timeLint(dir)
	if err != nil {
		return fmt.Errorf("lpmbench lint: %w", err)
	}
	warm, err := timeLint(dir)
	if err != nil {
		return fmt.Errorf("lpmbench lint: %w", err)
	}
	doc.LintSeconds = map[string]float64{"cold": cold, "warm": warm}
	return nil
}

func timeLint(dir string) (float64, error) {
	start := time.Now()
	if _, err := lint.Run(lint.Config{Dir: dir}); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// benchRunner is the serve-path workload: it publishes a short
// synthetic timeline with an obs snapshot per window, so the fleet
// endpoint has run-labeled series to render, without paying for a
// simulation.
type benchRunner struct{ windows int }

func (b benchRunner) Run(_ context.Context, spec ctrl.RunSpec, pub *ctrl.Publisher) (json.RawMessage, error) {
	reg := obs.NewRegistry()
	windows := reg.Counter("bench.windows")
	pub.SetMeta(spec.TSWindow, false)
	for i := 0; i < b.windows; i++ {
		windows.Inc()
		pub.Window(timeseries.Window{
			Index: i,
			Start: uint64(i) * spec.TSWindow,
			End:   uint64(i+1) * spec.TSWindow,
			Phase: -1,
		})
		pub.Snapshot(reg.Snapshot())
	}
	return json.RawMessage(`{"schema":"` + Schema + `"}`), nil
}

// captureWriter is the minimal ResponseWriter the benchmark scrapes
// into; discard mode keeps only the byte count.
type captureWriter struct {
	h       http.Header
	buf     bytes.Buffer
	n       int
	status  int
	discard bool
}

func (w *captureWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}

func (w *captureWriter) WriteHeader(code int) { w.status = code }

func (w *captureWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += len(b)
	if !w.discard {
		_, _ = w.buf.Write(b)
	}
	return len(b), nil
}

// measureServe times the fleet /metrics scrape path: a control-plane
// registry is loaded with three finished runs (each carrying a
// published obs snapshot and a short timeline) and the aggregated
// endpoint is scraped repeatedly through the API mux. The pinned
// number is the mean seconds per scrape of the best repetition — the
// cost one Prometheus poll imposes on the control plane.
func measureServe(ctx context.Context, doc *Document, reps int) error {
	reg := ctrl.NewRegistry(ctx, ctrl.Config{
		Runner:        benchRunner{windows: 32},
		MaxConcurrent: 3,
		TenantBudget:  3,
	})
	for _, tenant := range []string{"bench-a", "bench-b", "bench-c"} {
		if _, err := reg.Submit(ctrl.RunSpec{Tenant: tenant, Workload: benchWorkload}); err != nil {
			return fmt.Errorf("lpmbench serve: %w", err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := 0
		l := reg.List()
		for _, r := range l.Runs {
			if r.State.Terminal() {
				done++
			}
		}
		if done == len(l.Runs) {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return errors.New("lpmbench serve: runs did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return err
	}
	mux := ctrl.NewAPIMux(reg)
	// Sanity scrape: the fleet document must actually carry the runs.
	probe := &captureWriter{}
	mux.ServeHTTP(probe, req)
	if probe.status != http.StatusOK || !strings.Contains(probe.buf.String(), "lpm_ctrl_runs_done") {
		return fmt.Errorf("lpmbench serve: unexpected fleet scrape (status %d)", probe.status)
	}
	const scrapes = 50
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < scrapes; i++ {
			mux.ServeHTTP(&captureWriter{discard: true}, req)
		}
		if sec := time.Since(start).Seconds() / scrapes; sec < best {
			best = sec
		}
	}
	doc.ServeScrapeSeconds = best
	return nil
}

// measureOverhead pins the instrumentation tax as fractions (0.01 =
// 1%). Each path is micro-timed deterministically (best of reps
// rounds) — engine re-runs are far too noisy on shared CI boxes to
// resolve sub-percent costs — and amortised over the wall-clock of the
// work it instruments at the measured fast-forward rate:
//
//   - sampler_publish: the per-window control-plane publish sequence
//     (publish to the Live pull path and the Hub SSE push path with a
//     subscriber attached, plus the registry snapshot at its throttled
//     SnapshotEvery cadence), over one default-width window's
//     wall-clock.
//   - fabric_telemetry: the coordinator+worker probe sequence one
//     granule triggers (submit, queue syncs, execute, cache probe,
//     complete), over one bench-sized granule's wall-clock.
//   - serve_scrape: one fleet /metrics scrape against a 1 Hz scrape
//     cadence — the fraction of the interval the control plane spends
//     rendering.
func measureOverhead(ctx context.Context, doc *Document, reps int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	base := doc.CyclesPerSec["detailed_fastforward"]
	if base <= 0 {
		return errors.New("lpmbench overhead: missing fast-forward baseline")
	}

	// The per-window publish sequence, against a chip whose registry
	// carries real counter values.
	ch := chip.New(benchConfig())
	ch.SetContext(ctx)
	ch.EnableObs()
	ch.RunCycles(20000)
	if err := ch.Err(); err != nil {
		return fmt.Errorf("lpmbench overhead: %w", err)
	}
	const pubs = 5000
	perWindow := math.Inf(1)
	for r := 0; r < reps; r++ {
		live := timeseries.NewLive()
		hub := ctrl.NewHub()
		sub := hub.Subscribe(0)
		snap := ctrl.ThrottleSnapshots(func() { live.PublishSnapshot(ch.ObsSnapshot()) })
		start := time.Now()
		for i := 0; i < pubs; i++ {
			w := timeseries.Window{
				Index: i,
				Start: uint64(i) * timeseries.DefaultWidth,
				End:   uint64(i+1) * timeseries.DefaultWidth,
				Phase: -1,
			}
			live.Publish(w)
			snap()
			hub.Publish(w)
		}
		if sec := time.Since(start).Seconds() / pubs; sec < perWindow {
			perWindow = sec
		}
		sub.Close()
	}
	windowSec := float64(timeseries.DefaultWidth) / base

	// The per-granule fabric probe sequence.
	tel := fabric.NewTelemetry(obs.NewRegistry())
	wtel := fabric.NewWorkerTelemetry(obs.NewRegistry())
	const probes = 30000
	perGranule := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < probes; i++ {
			tel.Submitted()
			tel.SyncQueue(nil, 1)
			wtel.Executed(time.Millisecond, false)
			tel.CacheProbe(i%2 == 0)
			tel.Completed(time.Millisecond)
			tel.SyncQueue(nil, 0)
		}
		if sec := time.Since(start).Seconds() / probes; sec < perGranule {
			perGranule = sec
		}
	}
	granuleSec := float64(doc.Cycles) / base

	doc.Overhead = map[string]float64{
		"sampler_publish":  perWindow / windowSec,
		"fabric_telemetry": perGranule / granuleSec,
		"serve_scrape":     doc.ServeScrapeSeconds / 1.0,
	}
	return nil
}

// recoverKind is the trivial granule the recovery benchmark round-trips
// through the fabric: the cost under measurement is the resume path,
// not the executor.
const recoverKind = "bench.recover"

var registerRecoverKind = sync.OnceFunc(func() {
	fabric.RegisterKind(recoverKind, func(_ context.Context, spec json.RawMessage) (json.RawMessage, error) {
		var in struct {
			X uint64 `json:"x"`
		}
		if err := json.Unmarshal(spec, &in); err != nil {
			return nil, err
		}
		return json.Marshal(struct {
			Y uint64 `json:"y"`
		}{2 * in.X})
	})
})

// measureFleetRecover pins the fleet's crash-recovery latency: a
// journaling coordinator is killed mid-sweep and the clock runs from
// the kill to the first granule completion on the successor — journal
// replay, listener re-bind, worker redial, handshake, and one granule
// round trip. Best of reps, like the engine rates.
func measureFleetRecover(ctx context.Context, doc *Document, reps int) error {
	registerRecoverKind()
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		sec, err := timeFleetRecover(ctx, uint64(r))
		if err != nil {
			return fmt.Errorf("lpmbench fleet recover: %w", err)
		}
		if sec < best {
			best = sec
		}
	}
	doc.FleetRecoverSeconds = best
	return nil
}

func timeFleetRecover(ctx context.Context, rep uint64) (float64, error) {
	dir, err := os.MkdirTemp("", "lpmbench-fleet-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	opts := fabric.Options{
		InFlight:      2,
		StraggleAfter: -1,
		JournalPath:   filepath.Join(dir, "journal.lpmckpt"),
		Seed:          1,
	}

	c1, err := fabric.Listen("127.0.0.1:0", opts)
	if err != nil {
		return 0, err
	}
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			_ = fabric.RunWorker(wctx, c1.Addr(), fabric.WorkerOptions{
				Name: fmt.Sprintf("bench-%d", i), Seed: uint64(i + 1),
			})
		}(i)
	}
	if err := c1.WaitWorkers(ctx, 2); err != nil {
		_ = c1.Close()
		return 0, err
	}

	// A sweep that is genuinely mid-flight when the coordinator dies:
	// concurrent submits, killed once a few results have landed and
	// been journaled.
	sctx, stopSubmits := context.WithCancel(ctx)
	defer stopSubmits()
	var submits sync.WaitGroup
	const granules = 16
	for i := 0; i < granules; i++ {
		submits.Add(1)
		go func(i int) {
			defer submits.Done()
			spec, _ := json.Marshal(struct {
				X uint64 `json:"x"`
			}{uint64(i)})
			key := fmt.Sprintf("%s|%d|%d", recoverKind, rep, i)
			_, _ = c1.Submit(sctx, recoverKind, key, spec)
		}(i)
	}
	deadline := time.Now().Add(30 * time.Second)
	for c1.Stats().Completed < 4 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, errors.New("sweep never progressed")
		}
		time.Sleep(time.Millisecond)
	}

	// The kill. Everything from here to the successor's first completed
	// granule is recovery latency.
	start := time.Now()
	stopSubmits()
	stopWorkers()
	_ = c1.Close()
	submits.Wait()
	workers.Wait()

	c2, err := fabric.Listen("127.0.0.1:0", opts)
	if err != nil {
		return 0, err
	}
	defer c2.Close()
	w2ctx, stopW2 := context.WithCancel(ctx)
	defer stopW2()
	var resumed sync.WaitGroup
	resumed.Add(1)
	go func() {
		defer resumed.Done()
		_ = fabric.RunWorker(w2ctx, c2.Addr(), fabric.WorkerOptions{
			Name: "bench-resume", Seed: 9, DialRetry: 5 * time.Second,
		})
	}()
	defer resumed.Wait()
	spec, _ := json.Marshal(struct {
		X uint64 `json:"x"`
	}{granules})
	if _, err := c2.Submit(ctx, recoverKind, fmt.Sprintf("%s|%d|probe", recoverKind, rep), spec); err != nil {
		return 0, err
	}
	sec := time.Since(start).Seconds()
	if c2.Resumed() == nil {
		return 0, errors.New("successor coordinator did not replay the journal")
	}
	stopW2()
	return sec, nil
}

// checkAgainst compares fresh speedup ratios with the pinned document.
func checkAgainst(path string, fresh *Document, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var pinned Document
	if err := json.Unmarshal(data, &pinned); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if pinned.Schema != Schema {
		return fmt.Errorf("%s: schema %q, want %q", path, pinned.Schema, Schema)
	}
	pinnedStep := pinned.CyclesPerSec["detailed_stepped"]
	freshStep := fresh.CyclesPerSec["detailed_stepped"]
	if pinnedStep <= 0 || freshStep <= 0 {
		return fmt.Errorf("%s: missing detailed_stepped baseline", path)
	}
	p := cliutil.NewPrinter(stdout)
	failed := false
	for _, k := range []string{"detailed_fastforward", "functional"} {
		pr := pinned.CyclesPerSec[k] / pinnedStep
		fr := fresh.CyclesPerSec[k] / freshStep
		verdict := "ok"
		if fr < 0.8*pr {
			verdict = "REGRESSION"
			failed = true
		}
		p.Printf("check %-21s pinned %.2fx  fresh %.2fx  %s\n", k, pr, fr, verdict)
	}
	// Recovery latency gates coarsely: absolute seconds vary machine to
	// machine, so the gate only trips when a fresh recovery takes more
	// than 3x the pinned time plus 250ms of scheduler slack — wide
	// enough for a slow CI box, tight enough to catch an accidental
	// sleep or an un-journaled state rebuild on the resume path.
	if pinned.FleetRecoverSeconds > 0 && fresh.FleetRecoverSeconds > 0 {
		verdict := "ok"
		if fresh.FleetRecoverSeconds > 3*pinned.FleetRecoverSeconds+0.25 {
			verdict = "REGRESSION"
			failed = true
		}
		p.Printf("check %-21s pinned %.4fs  fresh %.4fs  %s\n",
			"fleet_recover", pinned.FleetRecoverSeconds, fresh.FleetRecoverSeconds, verdict)
	}
	if err := p.Err(); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("%w: engine speedup or fleet recovery regressed against %s", errRegression, path)
	}
	return nil
}

// gitCommit stamps the pinned file with the working tree's HEAD; the
// benchmark itself never depends on it.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
