// Command lpmsched runs the paper's case study II: scheduling the sixteen
// built-in workloads onto the Fig. 5 heterogeneous-L1 16-core CMP. It
// prints the per-workload profiling table (the Fig. 6 / Fig. 7 data), the
// NUCA-SA placements, and the Fig. 8 Hsp comparison of the four policies.
//
// Usage:
//
//	lpmsched -window 120000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"

	"lpm/internal/cliutil"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
	"lpm/internal/sched"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on addr in the background; an empty
// addr disables it.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "pprof: %v\n", err)
		}
	}()
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profInstr = fs.Uint64("profinstr", 15000, "instructions per profiling run")
		window    = fs.Uint64("window", 120000, "shared-run measured window (cycles)")
		warmup    = fs.Uint64("warmup", 60000, "shared-run warm-up (cycles)")
		seed      = fs.Uint64("seed", 1, "random-scheduler seed")
		workers   = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		pprofCfg  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)
	startPprof(*pprofCfg, stderr)

	names := trace.ProfileNames()
	sizes := chip.NUCAGroupSizes[:]
	pr := cliutil.NewPrinter(stdout)

	pr.Println("profiling standalone APC1 / APC2 per L1 size (Fig. 6 / Fig. 7 data)...")
	tbl, err := sched.BuildProfileTable(ctx, names, sizes, sched.ProfileOptions{Instructions: *profInstr})
	if err != nil {
		return err
	}
	pr.Printf("%-16s %28s %28s %s\n", "workload", "APC1 @ 4/16/32/64 KB", "APC2 @ 4/16/32/64 KB", "req(fg)")
	for _, n := range names {
		req, _ := tbl.RequiredSize(n, 0.01)
		a1, a2 := tbl.APC1[n], tbl.APC2[n]
		pr.Printf("%-16s %.3f %.3f %.3f %.3f     %.4f %.4f %.4f %.4f   %dKB\n",
			n, a1[0], a1[1], a1[2], a1[3], a2[0], a2[1], a2[2], a2[3], req/1024)
	}

	opt := sched.EvalOptions{WindowCycles: *window, WarmupCycles: *warmup}
	alone, err := sched.AloneIPCs(ctx, names, sizes, opt)
	if err != nil {
		return err
	}
	opt.AloneIPC = alone

	pr.Println("\nevaluating schedulers (Fig. 8)...")
	policies := []sched.Scheduler{
		sched.Random{Seed: *seed},
		sched.RoundRobin{},
		sched.NUCASA{Table: tbl, TolFrac: 0.10},
		sched.NUCASA{Table: tbl, TolFrac: 0.01},
	}
	for _, p := range policies {
		ev, err := sched.Evaluate(ctx, p, names, sizes, opt)
		if err != nil {
			return err
		}
		pr.Printf("%-12s Hsp=%.4f\n", ev.Scheduler, ev.Hsp)
		if _, isNUCA := p.(sched.NUCASA); isNUCA {
			for core, w := range ev.Assignment {
				if w >= 0 {
					pr.Printf("    core %2d (%2d KB) <- %s\n", core, sizes[core/4]/1024, names[w])
				}
			}
		}
	}
	return pr.Err()
}
