// Package sim is the determinism fixture's positive case: wall clocks
// and global randomness inside the simulation substrate.
package sim

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want "time.Now is wall-clock nondeterminism"
	return t.UnixNano()
}

// Elapsed measures wall time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is wall-clock nondeterminism"
}

// Draw uses the global generator.
func Draw() int {
	return rand.Intn(10) // want "math/rand.Intn is global/unseeded randomness"
}
