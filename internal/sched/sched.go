package sched

import (
	"fmt"
	"sort"

	"lpm/internal/sim/chip"
	"lpm/internal/stats"
)

// Assignment maps core index -> workload index; -1 leaves the core idle.
type Assignment []int

// Validate checks that every workload 0..n-1 appears exactly once.
func (a Assignment) Validate(n int) error {
	seen := make([]bool, n)
	placed := 0
	for core, w := range a {
		if w == -1 {
			continue
		}
		if w < 0 || w >= n {
			return fmt.Errorf("sched: core %d assigned invalid workload %d", core, w)
		}
		if seen[w] {
			return fmt.Errorf("sched: workload %d assigned twice", w)
		}
		seen[w] = true
		placed++
	}
	if placed != n {
		return fmt.Errorf("sched: placed %d of %d workloads", placed, n)
	}
	return nil
}

// Scheduler produces an assignment of workloads onto the NUCA chip's
// cores. groupSizes[g] is the private L1 size of cores 4g..4g+3.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Assign places len(workloads) programs onto len(groupSizes)*4 cores.
	Assign(workloads []string, groupSizes []uint64) (Assignment, error)
}

// Random assigns workloads to cores uniformly at random (a widely used
// data-center baseline, per the paper).
type Random struct {
	// Seed fixes the permutation.
	Seed uint64
}

// Name implements Scheduler.
func (r Random) Name() string { return "Random" }

// Assign implements Scheduler.
func (r Random) Assign(workloads []string, groupSizes []uint64) (Assignment, error) {
	nCores := len(groupSizes) * chip.NUCAGroupCores
	if len(workloads) > nCores {
		return nil, fmt.Errorf("sched: %d workloads > %d cores", len(workloads), nCores)
	}
	rng := stats.NewRNG(r.Seed ^ 0x5eed)
	perm := make([]int, nCores)
	rng.Perm(perm)
	a := make(Assignment, nCores)
	for i := range a {
		a[i] = -1
	}
	for w := range workloads {
		a[perm[w]] = w
	}
	return a, nil
}

// RoundRobin deals workloads to cores in order (workload i on core i),
// the other ubiquitous baseline.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "RoundRobin" }

// Assign implements Scheduler.
func (RoundRobin) Assign(workloads []string, groupSizes []uint64) (Assignment, error) {
	nCores := len(groupSizes) * chip.NUCAGroupCores
	if len(workloads) > nCores {
		return nil, fmt.Errorf("sched: %d workloads > %d cores", len(workloads), nCores)
	}
	a := make(Assignment, nCores)
	for i := range a {
		a[i] = -1
	}
	for w := range workloads {
		a[w] = w
	}
	return a, nil
}

// PIE schedules by predicted performance impact, in the spirit of Van
// Craeynest et al.'s Performance Impact Estimation that the paper's
// related-work section discusses: the applications with the steepest
// profiled IPC gain from extra cache get the biggest caches. It is a
// strong non-LPM baseline; unlike NUCA-SA it needs full per-size IPC
// profiles rather than the analyzer's online LPMR measurements.
type PIE struct {
	// Table carries the standalone profiling data (IPC per size).
	Table *ProfileTable
}

// Name implements Scheduler.
func (PIE) Name() string { return "PIE-like" }

// Assign implements Scheduler.
func (p PIE) Assign(workloads []string, groupSizes []uint64) (Assignment, error) {
	if p.Table == nil {
		return nil, fmt.Errorf("sched: PIE needs a profile table")
	}
	nGroups := len(groupSizes)
	nCores := nGroups * chip.NUCAGroupCores
	if len(workloads) > nCores {
		return nil, fmt.Errorf("sched: %d workloads > %d cores", len(workloads), nCores)
	}
	type slope struct {
		w    int
		gain float64 // IPC(largest)/IPC(smallest)
	}
	slopes := make([]slope, len(workloads))
	for w, name := range workloads {
		ipc, ok := p.Table.IPC[name]
		if !ok || len(ipc) == 0 {
			return nil, fmt.Errorf("sched: workload %q not profiled", name)
		}
		g := 1.0
		if ipc[0] > 0 {
			g = ipc[len(ipc)-1] / ipc[0]
		}
		slopes[w] = slope{w: w, gain: g}
	}
	// Steepest gain first; they take the largest-cache slots.
	sort.SliceStable(slopes, func(i, j int) bool { return slopes[i].gain > slopes[j].gain })
	a := make(Assignment, nCores)
	for i := range a {
		a[i] = -1
	}
	core := nCores - 1 // fill from the largest group down
	for _, s := range slopes {
		a[core] = s.w
		core--
	}
	return a, nil
}

// NUCASA is the paper's LPM-guided NUCA-aware scheduling algorithm
// (NUCA-SA). It follows the two-fold process of §V-B: first fit each
// application's L1 requirement (match LPMR1) with minimal resource, then
// resolve remaining freedom toward the smallest L2 demand (match LPMR2).
type NUCASA struct {
	// Table carries the standalone profiling data.
	Table *ProfileTable
	// TolFrac is the APC1 tolerance defining the required size: 0.01 for
	// the paper's fine-grained variant, 0.10 for coarse-grained.
	TolFrac float64
}

// Name implements Scheduler.
func (n NUCASA) Name() string {
	if n.TolFrac <= 0.01 {
		return "NUCA-SA(fg)"
	}
	return "NUCA-SA(cg)"
}

// Assign implements Scheduler.
func (n NUCASA) Assign(workloads []string, groupSizes []uint64) (Assignment, error) {
	if n.Table == nil {
		return nil, fmt.Errorf("sched: NUCA-SA needs a profile table")
	}
	nGroups := len(groupSizes)
	nCores := nGroups * chip.NUCAGroupCores
	if len(workloads) > nCores {
		return nil, fmt.Errorf("sched: %d workloads > %d cores", len(workloads), nCores)
	}

	// Fold 1: per-workload required L1 size with minimal resource.
	type need struct {
		w        int
		required uint64
		apc2     float64 // L2 demand at the required size (fold-2 key)
	}
	needs := make([]need, len(workloads))
	for w, name := range workloads {
		req, err := n.Table.RequiredSize(name, n.TolFrac)
		if err != nil {
			return nil, err
		}
		si, err := n.Table.sizeIndex(req)
		if err != nil {
			return nil, err
		}
		needs[w] = need{w: w, required: req, apc2: n.Table.APC2[name][si]}
	}

	// Most demanding first: largest requirement, then highest L2 demand —
	// so scarce big-cache slots go to the applications that need them and
	// heavy L2 consumers get the best chance to shrink their demand.
	sort.SliceStable(needs, func(i, j int) bool {
		if needs[i].required != needs[j].required {
			return needs[i].required > needs[j].required
		}
		return needs[i].apc2 > needs[j].apc2
	})

	groupOf := make(map[uint64]int, nGroups)
	for g, s := range groupSizes {
		groupOf[s] = g
	}
	free := make([]int, nGroups)
	for g := range free {
		free[g] = chip.NUCAGroupCores
	}

	a := make(Assignment, nCores)
	for i := range a {
		a[i] = -1
	}
	place := func(w, g int) {
		base := g * chip.NUCAGroupCores
		for c := base; c < base+chip.NUCAGroupCores; c++ {
			if a[c] == -1 {
				a[c] = w
				free[g]--
				return
			}
		}
	}

	for _, nd := range needs {
		g, ok := groupOf[nd.required]
		if !ok {
			return nil, fmt.Errorf("sched: required size %d has no group", nd.required)
		}
		// Fold 1: the exact group if it has room.
		if free[g] > 0 {
			place(nd.w, g)
			continue
		}
		// Fold 2: spill upward first (more cache can only help and cuts
		// the workload's L2 demand), then downward as a last resort.
		placed := false
		for gg := g + 1; gg < nGroups; gg++ {
			if free[gg] > 0 {
				place(nd.w, gg)
				placed = true
				break
			}
		}
		if !placed {
			for gg := g - 1; gg >= 0; gg-- {
				if free[gg] > 0 {
					place(nd.w, gg)
					placed = true
					break
				}
			}
		}
		if !placed {
			return nil, fmt.Errorf("sched: no free core for workload %d", nd.w)
		}
	}
	return a, nil
}
