package obs

// Prometheus text exposition (format version 0.0.4) for snapshots, so a
// running simulation can be scraped with standard tooling. Only the
// snapshot is exposed — the registry itself is single-goroutine, so
// serving code captures a Snapshot under its own lock and writes that.

import (
	"fmt"
	"io"
	"strings"
)

// promName converts a registry metric name ("l1.0.hits") into a valid
// Prometheus metric name ("lpm_l1_0_hits"): dots become underscores and
// everything is prefixed with the exporter namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("lpm_") + len(name))
	b.WriteString("lpm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promType maps a snapshot kind onto a Prometheus TYPE keyword.
// Histograms are exported as quantile summaries, matching HistValue.
func promType(kind string) string {
	switch kind {
	case "counter":
		return "counter"
	case "histogram":
		return "summary"
	default:
		return "gauge"
	}
}

// WritePromText writes the snapshot in the Prometheus text exposition
// format 0.0.4. Metrics keep their snapshot order (sorted by name);
// histograms are written as a summary: quantile series plus _sum-less
// _count and _mean companions. A nil snapshot writes nothing.
func (s *Snapshot) WritePromText(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, mv := range s.Metrics {
		name := promName(mv.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(mv.Kind)); err != nil {
			return err
		}
		var err error
		switch mv.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", name, mv.Count)
		case "histogram":
			if mv.Hist == nil {
				continue
			}
			_, err = fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.9\"} %g\n%s{quantile=\"0.99\"} %g\n%s_count %d\n%s_mean %g\n",
				name, mv.Hist.P50, name, mv.Hist.P90, name, mv.Hist.P99,
				name, mv.Hist.Count, name, mv.Hist.Mean)
		default:
			_, err = fmt.Fprintf(w, "%s %g\n", name, mv.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
