// Phases demonstrates the online-adaptation loop the paper's observation
// 3 enables: a program alternating between a pointer-chasing phase and a
// compute phase runs on the simulator; every interval the C-AMAT
// analyzer's counters are folded into a phase signature; the detector
// classifies the interval, and on each phase *change* the LPM model is
// consulted — here for the best C-AMAT lever and the layer mismatch —
// with the answer remembered per phase so re-entering a known phase is
// free.
package main

import (
	"fmt"

	"lpm"
	"lpm/internal/phase"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	memPhase := trace.MustProfile("429.mcf")  // pointer chasing
	cpuPhase := trace.MustProfile("444.namd") // compute heavy
	const dwell = 40000
	gen := trace.NewPhased("chase/compute", []trace.Profile{memPhase, cpuPhase},
		[][]float64{{0, 1}, {1, 0}}, dwell, 5)

	cfg := chip.SingleCore("429.mcf")
	cfg.Cores[0].Workload = gen
	cpiExe := lpm.MeasureCPIexe(cfg.Cores[0].CPU, trace.NewSynthetic(memPhase), 3, 15000)
	ch := chip.New(cfg)

	tracker := phase.NewTracker(phase.NewDetector(0.15))

	fmt.Println("interval  phase  change  LPMR1   advice")
	for k := 1; k <= 12; k++ {
		ch.RunUntilRetired(dwell, 200_000_000)
		m := ch.Measure(0, cpiExe)
		l1 := ch.Snapshot().Cores[0].L1
		sig := phase.FromLPM(m.Fmem, m.MR1, m.PMR1, l1.CH(), l1.CM(), m.IPC)
		id, changed := tracker.Observe(sig)

		advice, known := tracker.Recall(id).(string)
		if !known {
			// New phase: consult the model once and remember the answer.
			lever := lpm.BestLever(lpm.CAMAT{
				H: m.H1, CH: m.CH1, PMR: m.PMR1, PAMP: m.PAMP1, CM: m.CM1,
			})
			advice = fmt.Sprintf("improve %s (LPMR1 %.2f vs T1(10%%) %.2f)",
				lever, m.LPMR1(), m.T1(10))
			tracker.Remember(id, advice)
		}
		marker := ""
		if changed {
			marker = "*"
		}
		fmt.Printf("%8d  %5d  %6s  %.3f  %s\n", k, id, marker, m.LPMR1(), advice)
		ch.ResetCounters()
	}
	fmt.Printf("\n%s — the LPM algorithm only had to run for %d distinct phases\n",
		tracker, tracker.Phases())
}
