// Package obs is a miniature of the observability layer: enough
// surface for the fast-forward purity rule.
package obs

// Tracer emits structured events.
type Tracer struct{ n int }

// Emit records one event.
func (t *Tracer) Emit(cycle uint64, kind string) {
	if t == nil {
		return
	}
	t.n++
	_, _ = cycle, kind
}

// Histogram accumulates a distribution.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.n++
	_ = x
}

// ObserveN records n identical samples — the bulk accrual form.
func (h *Histogram) ObserveN(x float64, n uint64) {
	if h == nil {
		return
	}
	h.n += n
	_ = x
}
