// Reconfig runs the paper's case study I end to end: starting from the
// weakest Table I configuration, the LPM algorithm (Fig. 3) walks a
// million-point reconfigurable-architecture design space — issue width,
// instruction window, ROB, L1 ports, MSHRs, L2 interleaving — and stops
// at a configuration whose layered performance matches at the chosen
// stall target, with a handful of simulations instead of exhaustive
// search.
package main

import (
	"flag"
	"fmt"

	"lpm"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/trace"
)

func main() {
	grainFlag := flag.String("grain", "coarse", "stall target: fine (1%) or coarse (10%)")
	flag.Parse()
	grain := lpm.CoarseGrain
	if *grainFlag == "fine" {
		grain = lpm.FineGrain
	}

	space := explore.DefaultSpace()
	start := explore.TableConfigs()["A"]
	fmt.Printf("space: %d configurations; start: %s\n\n", space.Size(), start)

	target := explore.NewHardwareTarget(space, start, trace.MustProfile("410.bwaves"))
	target.Warmup = 140000
	target.Instructions = 15000

	res, final := target.RunAlgorithm(core.AlgorithmConfig{
		Grain:     grain,
		SlackFrac: 0.5, // the paper's case study II uses delta = 50% of T1
		MaxSteps:  32,
	})

	for i, st := range res.Steps {
		fmt.Printf("step %2d: %-26s LPMR1=%6.3f (T1=%.3f)  LPMR2=%6.3f\n",
			i+1, st.Case, st.Before.LPMR1(), st.T1, st.Before.LPMR2())
	}

	fmt.Println()
	fmt.Printf("final configuration: %s\n", final)
	fmt.Printf("hardware cost proxy: %.0f (start was %.0f)\n", final.Cost(), start.Cost())
	fmt.Printf("LPMR1 %.3f -> %.3f; measured stall %.4f -> %.4f cycles/instr\n",
		res.Steps[0].Before.LPMR1(), res.Final.LPMR1(),
		res.Steps[0].Before.MeasuredStall, res.Final.MeasuredStall)
	fmt.Printf("simulations: %d (%.4f%% of the space)  converged=%v met=%v\n",
		target.Evaluations(),
		100*float64(target.Evaluations())/float64(space.Size()),
		res.Converged, res.MetTarget)
}
