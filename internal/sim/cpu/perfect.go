package cpu

// Perfect is an ideal memory port: every access completes after a fixed
// latency with unlimited bandwidth. Running a core against Perfect with
// the L1 hit time yields CPI_exe, the paper's "processor computation
// cycles per instruction under perfect cache" (Eq. 5). Tick it once per
// cycle after the core.
type Perfect struct {
	// Latency is the constant completion time in cycles (use the L1 hit
	// time for CPI_exe).
	Latency uint64

	pend  []perfectPending
	count uint64
}

type perfectPending struct {
	done func(cycle uint64)
	at   uint64
}

// Access implements MemPort; it never refuses.
func (p *Perfect) Access(cycle uint64, addr uint64, write bool, done func(cycle uint64)) bool {
	p.count++
	p.pend = append(p.pend, perfectPending{done: done, at: cycle + p.Latency})
	return true
}

// Count returns the number of accesses served.
func (p *Perfect) Count() uint64 { return p.count }

// Busy reports outstanding completions.
func (p *Perfect) Busy() bool { return len(p.pend) > 0 }

// Tick fires due completions.
func (p *Perfect) Tick(cycle uint64) {
	keep := p.pend[:0]
	for _, e := range p.pend {
		if e.at <= cycle {
			e.done(cycle)
		} else {
			keep = append(keep, e)
		}
	}
	p.pend = keep
}
