package fabric

// The worker side of the fabric: dial the coordinator, announce
// capacity, then execute granules until the coordinator goes away or
// the context cancels. Workers are deliberately stateless — every
// granule is a pure function of its spec — so killing one at any
// instant loses nothing but time.
//
// On a proto-2 session the worker also heartbeats: periodic ping
// frames carry slot occupancy and the last measured round trip, the
// coordinator answers each with a pong, and a run of missed pongs
// makes the worker abandon the session itself — its half of the
// hung-TCP detection the coordinator's health deadlines do from the
// other side.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/faultinject"
	"lpm/internal/resilience/fleet"
)

// ErrDial marks a RunWorker failure that happened before any connection
// was established. Reconnect loops use it to distinguish "the
// coordinator was never there" (give up) from "an established session
// broke" (worth redialling: the coordinator may still be running and
// holding our abandoned granules).
var ErrDial = errors.New("fabric: dial failed")

// missedPongLimit is how many ping intervals of total inbound silence
// (no frame of any type, not just pongs) a worker tolerates before
// declaring its session wedged and dropping it. Deliberately lenient —
// a coordinator grinding under load answers pings late without the
// session being hung; a genuinely wedged TCP session (the peer
// vanished without a FIN) stays silent and is caught within seconds.
const missedPongLimit = 16

// WorkerOptions configure RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs; defaults to the
	// local connection address.
	Name string
	// Slots is how many granules execute concurrently; defaults to 1.
	Slots int
	// NoCacheProbe disables the shared-cache round trip before each
	// execution. The probe is how re-issued granules whose result
	// already landed (a straggler duplicate won) avoid recomputation.
	NoCacheProbe bool
	// DialRetry keeps retrying a failed dial for this long before
	// giving up, so workers may be launched before their coordinator.
	// 0 fails fast on the first refused connection. Attempts are spaced
	// by Retry's seeded backoff schedule.
	DialRetry time.Duration
	// Retry is the deterministic backoff policy behind dial retries and
	// cache-probe re-sends. The zero value means fleet defaults seeded
	// by Seed.
	Retry fleet.RetryPolicy
	// Seed seeds the default retry policy's jitter stream; give each
	// worker a distinct seed so a killed fleet does not re-dial in
	// lockstep.
	Seed uint64
	// Log receives structured worker diagnostics with granule attrs;
	// nil discards them.
	Log *slog.Logger
	// Obs, when set, receives worker telemetry: granule execution
	// latency histograms, cache-probe hits, abandoned-granule counts.
	// Nil keeps every probe a nil-receiver no-op.
	Obs *WorkerTelemetry
	// Reprobe carries granule keys this process abandoned mid-execution
	// (shutdown or a broken connection). When the coordinator re-issues
	// one of them on a later connection, the worker probes the shared
	// cache even under NoCacheProbe instead of silently re-simulating —
	// a straggler duplicate may already have resolved it. Nil disables
	// the bookkeeping.
	Reprobe *ReprobeSet
}

// retryPolicy resolves the effective backoff policy.
func (o WorkerOptions) retryPolicy() fleet.RetryPolicy {
	if o.Retry == (fleet.RetryPolicy{}) {
		p := fleet.Defaults(o.Seed)
		p.Base = 100 * time.Millisecond
		p.Cap = 2 * time.Second
		return p
	}
	return o.Retry
}

// ReprobeSet is a concurrency-safe set of granule keys whose execution
// this process abandoned. It outlives individual RunWorker sessions so
// a reconnecting worker remembers what it walked away from.
type ReprobeSet struct {
	mu   sync.Mutex
	keys map[string]struct{}
}

// NewReprobeSet returns an empty set.
func NewReprobeSet() *ReprobeSet { return &ReprobeSet{keys: make(map[string]struct{})} }

// Add records an abandoned granule key. Nil-safe.
func (s *ReprobeSet) Add(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key] = struct{}{}
}

// Take reports whether key was abandoned earlier and removes it — each
// abandonment forces exactly one cache re-probe. Nil-safe.
func (s *ReprobeSet) Take(key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.keys[key]
	if ok {
		delete(s.keys, key)
	}
	return ok
}

// Len returns the number of keys currently recorded. Nil-safe.
func (s *ReprobeSet) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// RunWorker connects to a coordinator at addr and serves granules until
// the coordinator disconnects (clean shutdown, returns nil) or ctx
// cancels (returns nil — a signalled worker is a normal exit). Other
// transport or protocol failures are returned as errors.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	conn, err := dialRetry(ctx, addr, opts.DialRetry, opts.retryPolicy())
	if err != nil {
		return fmt.Errorf("%w: coordinator %s: %v", ErrDial, addr, err)
	}
	defer conn.Close()
	if opts.Name == "" {
		opts.Name = conn.LocalAddr().String()
	}

	w := &workerState{
		opts:     opts,
		conn:     conn,
		pending:  make(map[uint64]chan Msg),
		pingSent: make(map[uint64]time.Time),
	}
	w.ctx, w.cancel = context.WithCancel(ctx)
	defer w.cancel()
	// A cancelled context unblocks the read loop by closing the
	// connection out from under it.
	stop := context.AfterFunc(w.ctx, func() { _ = conn.Close() })
	defer stop()

	if err := w.send(Msg{Type: MsgHello, Proto: ProtoVersion, Worker: opts.Name, Slots: opts.Slots}); err != nil {
		return fmt.Errorf("fabric: handshake: %w", err)
	}
	welcome, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("fabric: handshake: %w", err)
	}
	if welcome.Type != MsgWelcome || welcome.Proto < MinProtoVersion || welcome.Proto > ProtoVersion {
		return fmt.Errorf("fabric: handshake: coordinator sent %q (proto %d), want %q (proto %d..%d)",
			welcome.Type, welcome.Proto, MsgWelcome, MinProtoVersion, ProtoVersion)
	}
	w.proto = welcome.Proto
	w.lastFrame.Store(time.Now().UnixNano())
	w.log().Info("fabric: worker connected",
		"worker", opts.Name, "coordinator", addr, "proto", w.proto, "slots", opts.Slots)
	if w.proto >= 2 && welcome.PingMS > 0 {
		w.loops.Add(1)
		go w.heartbeatLoop(time.Duration(welcome.PingMS) * time.Millisecond)
	}

	err = w.readLoop()
	w.cancel()
	w.execs.Wait()
	w.loops.Wait()
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || ctx.Err() != nil {
		// The coordinator finished (EOF/reset), or we were cancelled:
		// both are the normal end of a worker's life.
		return nil
	}
	return err
}

// dialRetry dials the coordinator, retrying refused connections inside
// the window — spaced by the shared backoff policy, so worker and
// coordinator launch order does not matter and a restarted fleet does
// not hammer the listener in lockstep.
func dialRetry(ctx context.Context, addr string, window time.Duration, policy fleet.RetryPolicy) (net.Conn, error) {
	deadline := time.Now().Add(window)
	for attempt := 0; ; attempt++ {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil || !time.Now().Before(deadline) {
			return nil, err
		}
		if serr := policy.Sleep(ctx, attempt); serr != nil {
			return nil, err
		}
	}
}

// workerState is the per-connection state of one running worker.
type workerState struct {
	opts   WorkerOptions
	conn   net.Conn
	proto  int
	ctx    context.Context
	cancel context.CancelFunc

	writeMu sync.Mutex // serialises frames from concurrent executions
	execs   sync.WaitGroup
	loops   sync.WaitGroup

	busy      atomic.Int64 // granules currently executing
	pingSeq   atomic.Uint64
	pongSeen  atomic.Uint64 // ID of the last pong received
	lastRTT   atomic.Int64  // microseconds
	lastFrame atomic.Int64  // UnixNano of the last inbound frame

	mu       sync.Mutex
	pending  map[uint64]chan Msg  // cacheget correlation, keyed by granule id
	pingSent map[uint64]time.Time // outstanding pings, for RTT measurement
}

// send writes one frame, serialised against concurrent executions. A
// failed send is fatal for the connection: the stream may hold a torn
// frame, so the only safe move is to drop the link and let the
// coordinator re-issue.
func (w *workerState) send(m Msg) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	if err := WriteFrame(w.conn, m); err != nil {
		_ = w.conn.Close()
		w.cancel()
		return err
	}
	return nil
}

// heartbeatLoop sends pings on the coordinator-assigned cadence,
// carrying slot occupancy and the last measured round trip. When
// missedPongLimit ping intervals pass with no inbound frame of any
// kind, the session is wedged — bytes are not flowing even though the
// socket looks open — so the worker drops the link itself and lets its
// reconnect path take over.
func (w *workerState) heartbeatLoop(every time.Duration) {
	defer w.loops.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-ticker.C:
		}
		seq := w.pingSeq.Add(1)
		seen := w.pongSeen.Load()
		if silent := time.Since(time.Unix(0, w.lastFrame.Load())); silent > time.Duration(missedPongLimit)*every {
			w.log().Warn("fabric: session wedged, dropping connection",
				"worker", w.opts.Name, "silent", silent.String(), "pings_unanswered", seq-seen-1)
			_ = w.conn.Close()
			w.cancel()
			return
		}
		w.mu.Lock()
		w.pingSent[seq] = time.Now()
		// Trim acknowledged entries so the map stays bounded.
		for id := range w.pingSent {
			if id <= seen {
				delete(w.pingSent, id)
			}
		}
		w.mu.Unlock()
		if err := w.send(Msg{
			Type: MsgPing, ID: seq,
			Busy: int(w.busy.Load()), RTT: w.lastRTT.Load(),
		}); err != nil {
			return
		}
	}
}

// pongReceived records a pong: liveness proof plus an RTT sample for
// the next ping's telemetry.
func (w *workerState) pongReceived(m Msg) {
	prev := w.pongSeen.Load()
	if m.ID > prev {
		w.pongSeen.Store(m.ID)
	}
	w.mu.Lock()
	if at, ok := w.pingSent[m.ID]; ok {
		w.lastRTT.Store(time.Since(at).Microseconds())
		delete(w.pingSent, m.ID)
	}
	w.mu.Unlock()
}

// readLoop demultiplexes coordinator frames: work starts an execution
// slot, cache replies route to the waiting execution, pongs feed the
// heartbeat accounting.
func (w *workerState) readLoop() error {
	sem := make(chan struct{}, w.opts.Slots)
	for {
		//lint:ignore ctxflow context.AfterFunc at dial time closes the conn on cancellation, failing this read
		m, err := ReadFrame(w.conn)
		if err != nil {
			return err
		}
		w.lastFrame.Store(time.Now().UnixNano())
		switch m.Type {
		case MsgWork:
			// The slot is acquired inside the goroutine, never here: the
			// read loop must keep draining frames (cache replies in
			// particular) even when every slot is busy, or an execution
			// waiting on its cache probe would deadlock the connection.
			w.execs.Add(1)
			go func(m Msg) {
				defer w.execs.Done()
				select {
				case sem <- struct{}{}:
				case <-w.ctx.Done():
					return
				}
				defer func() { <-sem }()
				w.execute(m)
			}(m)
		case MsgCacheValue:
			w.mu.Lock()
			ch := w.pending[m.ID]
			delete(w.pending, m.ID)
			w.mu.Unlock()
			if ch != nil {
				//lint:ignore ctxflow pending reply channels are buffered (cap 1); the send cannot block
				ch <- m
			}
		case MsgPong:
			w.pongReceived(m)
		default:
			return fmt.Errorf("fabric: unexpected %q frame from coordinator", m.Type)
		}
	}
}

// execute runs one granule and sends its result. The chaos failpoints
// live here: "fabric.worker.kill" drops the connection mid-granule (a
// crashed worker), "fabric.worker.hang" wedges the slot until the
// connection dies (a livelocked worker the straggler re-issue must
// cover for), and "fabric.worker.lie" corrupts the computed value
// before it is sent (a lying worker cross-validation must catch).
func (w *workerState) execute(m Msg) {
	w.busy.Add(1)
	defer w.busy.Add(-1)
	if err := faultinject.Hit("fabric.worker.kill", m.Kind); err != nil {
		w.log().Warn("fabric: injected kill on granule",
			"worker", w.opts.Name, "granule", m.ID, "err", err.Error())
		_ = w.conn.Close()
		w.cancel()
		return
	}
	if err := faultinject.Hit("fabric.worker.hang", m.Kind); err != nil {
		w.log().Warn("fabric: injected hang on granule",
			"worker", w.opts.Name, "granule", m.ID, "err", err.Error())
		<-w.ctx.Done()
		return
	}

	// An earlier session of this process may have walked away from this
	// very granule (shutdown mid-execution). In that case probe the
	// shared cache even when probes are off: a straggler duplicate may
	// already have resolved it, and re-simulating would silently burn
	// the work the re-issue machinery just saved.
	reprobe := w.opts.Reprobe.Take(m.Key)
	if reprobe {
		w.log().Info("fabric: re-probing shared cache for previously abandoned granule",
			"worker", w.opts.Name, "granule", m.ID, "kind", m.Kind, "key", m.Key)
	}
	if !w.opts.NoCacheProbe || reprobe {
		if hit, reply := w.cacheProbe(m); hit {
			w.opts.Obs.ProbeHit()
			_ = w.send(Msg{Type: MsgResult, ID: m.ID,
				Value: reply.Value, Error: reply.Error, Transient: reply.Transient})
			return
		}
	}

	result := Msg{Type: MsgResult, ID: m.ID}
	start := time.Now()
	exec, err := lookupKind(m.Kind)
	if err == nil {
		result.Value, err = runExecutor(w.ctx, exec, m)
	}
	if err != nil {
		if w.ctx.Err() != nil {
			// Shutting down; a partial result must not be sent. Say so
			// loudly and remember the key — if this process reconnects
			// and is handed the granule again, it re-probes the shared
			// cache first instead of silently re-simulating.
			w.opts.Reprobe.Add(m.Key)
			w.opts.Obs.Abandoned()
			w.log().Warn("fabric: abandoning granule mid-execution on shutdown",
				"worker", w.opts.Name, "granule", m.ID, "kind", m.Kind, "key", m.Key)
			return
		}
		result.Value = nil
		result.Error = err.Error()
		result.Transient = fleet.IsTransient(err)
	}
	if lieErr := faultinject.Hit("fabric.worker.lie", m.Kind); lieErr != nil && result.Error == "" {
		// A lying worker: the computed value is silently corrupted on
		// the way out. Deterministic per granule id so the chaos suite
		// replays the exact same lie. The lie must stay valid JSON — a
		// bit flip that breaks the encoding would fail the frame write
		// and kill the session before the lie ever reaches a vote
		// (wire-level damage is the separate "fabric.frame.write"
		// point), so an unencodable flip falls back to a structured lie.
		lie := faultinject.FlipBit(result.Value, int64(m.ID))
		if !json.Valid(lie) {
			lie, _ = json.Marshal(map[string]uint64{"lie": m.ID})
		}
		result.Value = lie
		w.log().Warn("fabric: injected lie on granule",
			"worker", w.opts.Name, "granule", m.ID, "err", lieErr.Error())
	}
	w.opts.Obs.Executed(time.Since(start), result.Error != "")
	_ = w.send(result)
}

// runExecutor invokes the kind's executor, converting a panic into an
// error so one poisoned granule cannot take down the whole worker.
func runExecutor(ctx context.Context, exec Executor, m Msg) (value []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fabric: executor for %s panicked: %v", m.Kind, r)
		}
	}()
	return exec(ctx, m.Spec)
}

// cacheProbeAttempts bounds probe re-sends before degrading to local
// computation — the probe is an optimisation, never a dependency.
const cacheProbeAttempts = 3

// cacheProbe asks the coordinator's shared result cache for this
// granule's key; false means compute locally (a probe that fails in
// transit just degrades to computing, never to a missing result). A
// reply lost on a flaky link is re-requested on the shared backoff
// schedule before giving up.
func (w *workerState) cacheProbe(m Msg) (bool, Msg) {
	policy := w.opts.retryPolicy()
	for attempt := 0; attempt < cacheProbeAttempts; attempt++ {
		ch := make(chan Msg, 1)
		w.mu.Lock()
		w.pending[m.ID] = ch
		w.mu.Unlock()
		if err := w.send(Msg{Type: MsgCacheGet, ID: m.ID, Key: m.Key}); err != nil {
			return false, Msg{}
		}
		// Wait generously relative to the backoff schedule; a healthy
		// round trip answers in microseconds.
		wait := time.NewTimer(10 * policy.Delay(attempt))
		select {
		case reply := <-ch:
			wait.Stop()
			return reply.Found, reply
		case <-w.ctx.Done():
			wait.Stop()
			w.dropProbe(m.ID)
			return false, Msg{}
		case <-wait.C:
			w.dropProbe(m.ID)
		}
	}
	w.log().Warn("fabric: cache probe unanswered, computing locally",
		"worker", w.opts.Name, "granule", m.ID, "key", m.Key)
	return false, Msg{}
}

// dropProbe deregisters a probe whose reply is no longer awaited.
func (w *workerState) dropProbe(id uint64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

// log returns the worker's structured logger (discard when none was
// configured).
func (w *workerState) log() *slog.Logger {
	return cliutil.LoggerOrDiscard(w.opts.Log)
}
