package lint

// Per-function facts: the intraprocedural summaries the interprocedural
// analyzers combine over the call graph. Facts are computed once per
// package (lazily, guarded by a sync.Once) and keyed by the function's
// defining syntax, so a Package cached across lint runs by the
// content-keyed load cache carries its fact table with it — a no-change
// re-run recomputes neither types nor facts.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Site is one fact occurrence: a position plus a human-readable
// description for diagnostics.
type Site struct {
	Pos  token.Pos
	What string
}

// FuncFacts summarises one function body.
type FuncFacts struct {
	// Allocs are the body's direct heap-allocation sites: make, new,
	// append into a fresh slice (the amortised x = append(x, ...) idiom
	// is exempt), reference composite literals, closure creation,
	// interface boxing, string building, goroutine launches, and calls
	// into allocating stdlib packages (fmt, errors, sort, ...).
	Allocs []Site
	// WallClock are reads of wall-clock time or global randomness
	// (time.Now family, math/rand) — nondeterminism sources.
	WallClock []Site
	// GlobalReads are uses of package-level mutable variables (its own
	// package's or another's), the state that makes a function impure.
	GlobalReads []Site
	// IO are calls into os, os/exec and net.
	IO []Site
	// AcceptsCtx reports a context.Context parameter in the signature.
	AcceptsCtx bool
	// UsesCtx reports that the body mentions that parameter at all
	// (reads it, forwards it, stores it).
	UsesCtx bool
}

// Facts returns the package's fact table, keyed by *ast.FuncDecl /
// *ast.FuncLit, computing it on first use.
func (p *Package) Facts() map[ast.Node]*FuncFacts {
	p.factsOnce.Do(func() {
		p.facts = make(map[ast.Node]*FuncFacts)
		for _, f := range p.Syntax {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					p.facts[fd] = computeFacts(p, fd.Type, fd.Body)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					p.facts[lit] = computeFacts(p, lit.Type, lit.Body)
				}
				return true
			})
		}
	})
	return p.facts
}

// factsOf is the node-level accessor the analyzers use.
func factsOf(n *FuncNode) *FuncFacts {
	if f := n.Pkg.Facts()[n.Syntax()]; f != nil {
		return f
	}
	return &FuncFacts{}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxParams collects the *types.Var objects of ft's context.Context
// parameters.
func ctxParams(info *types.Info, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// computeFacts walks one function body (not nested literals — each
// literal carries its own facts) classifying every fact site.
func computeFacts(p *Package, ft *ast.FuncType, body *ast.BlockStmt) *FuncFacts {
	facts := &FuncFacts{}
	info := p.Info
	ctxVars := ctxParams(info, ft)
	facts.AcceptsCtx = len(ctxVars) > 0
	selfAppend := selfAppendCalls(body)
	iife := iifeLits(body)

	// Not inspectSameFunc: nested literals must be SEEN (their creation
	// is this body's allocation) without being DESCENDED into (their
	// bodies carry their own facts).
	ast.Inspect(body, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.FuncLit:
			// An immediately-invoked literal is an ordinary call edge,
			// not a materialised closure.
			if !iife[nd] {
				facts.Allocs = append(facts.Allocs, Site{nd.Pos(), "closure creation allocates its captured environment"})
			}
			return false
		case *ast.GoStmt:
			facts.Allocs = append(facts.Allocs, Site{nd.Pos(), "go statement allocates a goroutine"})
		case *ast.CompositeLit:
			if s := compositeAllocSite(info, nd); s != nil {
				facts.Allocs = append(facts.Allocs, *s)
			}
		case *ast.UnaryExpr:
			if nd.Op == token.AND {
				if _, ok := ast.Unparen(nd.X).(*ast.CompositeLit); ok {
					facts.Allocs = append(facts.Allocs, Site{nd.Pos(), "&composite literal escapes to the heap"})
				}
			}
		case *ast.BinaryExpr:
			if nd.Op == token.ADD {
				if t, ok := info.Types[nd.X]; ok && isStringType(t.Type) && !isConstExpr(info, nd) {
					// a+b+c parses as (a+b)+c; report the chain once, at
					// the innermost concatenation.
					if inner, ok := ast.Unparen(nd.X).(*ast.BinaryExpr); !ok || inner.Op != token.ADD {
						facts.Allocs = append(facts.Allocs, Site{nd.Pos(), "string concatenation allocates"})
					}
				}
			}
		case *ast.Ident:
			if v := globalVarUse(info, nd); v != nil {
				facts.GlobalReads = append(facts.GlobalReads, Site{nd.Pos(), "uses package-level variable " + v.Name()})
			}
			for _, cv := range ctxVars {
				if info.Uses[nd] == cv {
					facts.UsesCtx = true
				}
			}
		case *ast.CallExpr:
			classifyCall(p, facts, nd, selfAppend)
		}
		return true
	})
	return facts
}

// iifeLits collects function literals the body invokes immediately
// (`func() { ... }()`): those never escape as closure values.
func iifeLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// selfAppendCalls collects the body's `x = append(x, ...)` calls: the
// amortised-growth idiom. Against a preallocated (freelist) buffer it
// is steady-state alloc-free — exactly what TestSteadyStateZeroAlloc
// measures — so it is not an allocation fact. Appending into a fresh
// variable copies the backing array every call and stays flagged.
func selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	inspectSameFunc(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			// `x = append(x, ...)` and the in-place variants
			// `x = append(x[:i], ...)` reuse x's backing array.
			arg := ast.Unparen(call.Args[0])
			for {
				se, ok := arg.(*ast.SliceExpr)
				if !ok {
					break
				}
				arg = ast.Unparen(se.X)
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(arg) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// compositeAllocSite classifies a composite literal: slice, map and
// channel literals always allocate backing storage; value struct and
// array literals do not (the &lit escape case is handled separately).
func compositeAllocSite(info *types.Info, lit *ast.CompositeLit) *Site {
	tv, ok := info.Types[lit]
	if !ok {
		return nil
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		return &Site{lit.Pos(), "slice literal allocates backing storage"}
	case *types.Map:
		return &Site{lit.Pos(), "map literal allocates"}
	}
	return nil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether e folds to a constant (constant string
// concatenation happens at compile time).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// globalVarUse returns the package-level variable nd uses, or nil.
// Struct field selectors resolve to *types.Var too, but fields have a
// non-package parent scope, so only true globals match.
func globalVarUse(info *types.Info, nd *ast.Ident) *types.Var {
	v, ok := info.Uses[nd].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// wallClockFuncs are the time package's clock readers; types and
// constants (time.Duration, time.Millisecond) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "After": true, "AfterFunc": true,
}

// allocPkgs are stdlib packages whose exported call surface allocates
// as a matter of course; any call into one is an allocation site.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "sort": true, "reflect": true,
	"runtime/debug": true,
}

// allocFuncs are specific allocating functions in otherwise-mixed
// stdlib packages.
var allocFuncs = map[string]map[string]bool{
	"strings": {"Join": true, "Repeat": true, "Split": true, "SplitN": true,
		"Fields": true, "Replace": true, "ReplaceAll": true, "Map": true,
		"ToUpper": true, "ToLower": true, "Clone": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "FormatBool": true},
	"bytes":  {"Join": true, "Repeat": true, "Split": true, "Clone": true},
	"slices": {"Clone": true, "Concat": true, "Collect": true, "Sorted": true},
	"maps":   {"Clone": true, "Collect": true, "Keys": true, "Values": true},
}

// classifyCall records a call's fact sites: builtins that allocate,
// allocating stdlib calls, wall-clock/randomness reads, os/net IO, and
// interface boxing of its arguments.
func classifyCall(p *Package, facts *FuncFacts, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	info := p.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion: string([]byte) and friends allocate.
		if len(call.Args) != 1 {
			return
		}
		at, ok := info.Types[call.Args[0]]
		if !ok {
			return
		}
		if isStringType(tv.Type) && !isStringType(at.Type) && !isConstExpr(info, call.Args[0]) {
			facts.Allocs = append(facts.Allocs, Site{call.Pos(), "conversion to string allocates"})
		} else if isStringType(at.Type) && isByteOrRuneSlice(tv.Type) {
			facts.Allocs = append(facts.Allocs, Site{call.Pos(), "conversion from string allocates"})
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				facts.Allocs = append(facts.Allocs, Site{call.Pos(), "make allocates"})
			case "new":
				facts.Allocs = append(facts.Allocs, Site{call.Pos(), "new allocates"})
			case "append":
				if !selfAppend[call] {
					facts.Allocs = append(facts.Allocs, Site{call.Pos(), "append into a fresh slice copies and allocates"})
				}
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		name := fn.Name()
		switch {
		case path == "time" && wallClockFuncs[name]:
			facts.WallClock = append(facts.WallClock, Site{call.Pos(), "time." + name + " reads the wall clock"})
		case path == "math/rand" || path == "math/rand/v2":
			facts.WallClock = append(facts.WallClock, Site{call.Pos(), path + "." + name + " is global randomness"})
		case path == "os" || path == "os/exec" || path == "net" || path == "io/fs":
			facts.IO = append(facts.IO, Site{call.Pos(), "calls " + path + "." + name})
		case allocPkgs[path]:
			facts.Allocs = append(facts.Allocs, Site{call.Pos(), path + "." + name + " allocates"})
		case allocFuncs[path] != nil && allocFuncs[path][name]:
			facts.Allocs = append(facts.Allocs, Site{call.Pos(), path + "." + name + " allocates"})
		}
	}
	boxingSites(info, facts, call, fn)
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxingSites flags arguments boxed into interface parameters: a
// non-pointer concrete value passed where an interface is expected
// allocates the interface's data word. Pointers, interfaces and nil fit
// in the word directly and stay legal.
func boxingSites(info *types.Info, facts *FuncFacts, call *ast.CallExpr, fn *types.Func) {
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			vs, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = vs.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the interface word
		}
		what := "interface boxing allocates"
		if fn != nil {
			what = "argument boxed into interface parameter of " + fn.Name() + " allocates"
		}
		facts.Allocs = append(facts.Allocs, Site{arg.Pos(), what})
	}
}
