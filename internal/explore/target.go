package explore

import (
	"context"

	"lpm/internal/core"
	"lpm/internal/fabric"
	"lpm/internal/faultinject"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
	"lpm/internal/trace"
)

// Evaluation records one simulated design point.
type Evaluation struct {
	// Point is the hardware configuration evaluated.
	Point Point
	// M is the resulting LPM measurement.
	M core.Measurement
}

// HardwareTarget adapts the design space to the LPM algorithm's Target
// interface: each Optimize step moves one index along one parameter menu
// and each Measure simulates the current point. It is the paper's
// "hardware approach" (reconfigurable architecture).
type HardwareTarget struct {
	// Space is the parameter menu.
	Space Space
	// Profile names the workload.
	Profile trace.Profile
	// Instructions per evaluation run; 0 means 20000.
	Instructions uint64
	// Warmup instructions executed (and discarded) before the measured
	// window, so caches reach steady state the way the paper's SimPoint
	// samples do; 0 means 5 * Instructions.
	Warmup uint64
	// WarmupFast, when set, runs the warm-up in the chip's functional
	// tier: the same Warmup instructions per core warm the cache
	// hierarchy, directory and DRAM rows at per-instruction cost, then
	// the measured window runs detailed. The measured numbers are not
	// bit-identical to a detailed warm-up (the warm microstate differs),
	// so the flag joins the memo key; the LPMR ordering the exploration
	// consumes is preserved. Use it for frontier pruning and large
	// sweeps where warm-up dominates wall-clock.
	WarmupFast bool
	// MaxCycles bounds each evaluation; 0 means (Warmup+Instructions)*400.
	MaxCycles uint64
	// Speculate, when set, makes each Measure cache miss pre-evaluate the
	// whole one-step frontier (every single-knob bump and the
	// ReduceOverprovision drops) in one parallel batch, so the serial
	// LPMR-reduction loop afterwards consumes memoised results. The walk,
	// its measurements, and the Evaluations() count are bit-identical to
	// the non-speculative run; only wall-clock changes.
	Speculate bool
	// Observe, when set, enables the chip's metrics registry for every
	// evaluation so each Measurement carries a per-layer obs.Snapshot.
	// The flag is part of the memo key: observed and unobserved runs
	// never share cached results.
	Observe bool
	// Timeline, when set, attaches a cycle-windowed sampler to every
	// evaluation (after warm-up, so windows cover exactly the measured
	// interval) and each Measurement carries a timeseries.Series. Like
	// Observe, the flag is part of the memo key.
	Timeline bool
	// TimelineWindow overrides the sampler's base window width in cycles
	// (0 = the sampler default); only meaningful with Timeline set.
	TimelineWindow uint64
	// Ctx, when non-nil, cancels in-flight simulations cooperatively:
	// a cancelled evaluation surfaces as an error from RunAlgorithmCtx
	// (via the resilience.Abort panic carrier) instead of a result.
	// Neither Ctx nor WatchdogCycles joins the memo key — they cannot
	// change a successful measurement.
	Ctx context.Context
	// WatchdogCycles is the no-progress budget armed on every evaluation
	// chip; 0 uses DefaultWatchdogCycles.
	WatchdogCycles uint64
	// OnEvaluate, when non-nil, runs after every recorded evaluation —
	// the checkpoint layer's hook for persisting the memo and frontier
	// at simulation granularity.
	OnEvaluate func(Evaluation)

	ix      [6]int
	rrL1    int // round-robin cursor over the L1-layer knobs
	rrL2    int // round-robin cursor over the L2-layer knobs
	history []Evaluation
	cache   map[[6]int]core.Measurement
	evals   int
}

// l1Knobs are the index positions of parameters that raise layer-1
// matching (core-side request shaping + L1 service concurrency):
// issue width, IW, ROB, L1 ports.
var l1Knobs = [4]int{0, 1, 2, 3}

// l2Knobs raise layer-2 matching: L1 MSHRs (more outstanding misses to
// overlap) and L2 banks (more LLC service concurrency).
var l2Knobs = [2]int{4, 5}

// NewHardwareTarget starts exploration at the given point.
func NewHardwareTarget(space Space, start Point, profile trace.Profile) *HardwareTarget {
	t := &HardwareTarget{
		Space:   space,
		Profile: profile,
		cache:   make(map[[6]int]core.Measurement),
	}
	t.ix = space.Indices(start)
	return t
}

// Current returns the point under evaluation.
func (t *HardwareTarget) Current() Point { return t.Space.At(t.ix) }

// Evaluations returns the number of simulations run (cache misses of
// Measure).
func (t *HardwareTarget) Evaluations() int { return t.evals }

// History returns every simulated point in order.
func (t *HardwareTarget) History() []Evaluation { return t.history }

// Measure implements core.Target by simulating the current point (with
// memoisation: revisiting a point is free, like re-reading counters).
func (t *HardwareTarget) Measure() core.Measurement {
	if m, ok := t.cache[t.ix]; ok {
		return m
	}
	if t.Speculate {
		t.PreEvaluate(t.frontier())
	}
	m := t.Evaluate(t.Current())
	t.cache[t.ix] = m
	return m
}

// budgets resolves the per-run instruction and cycle budgets.
func (t *HardwareTarget) budgets() (instr, warm, maxCy uint64) {
	instr = t.Instructions
	if instr == 0 {
		instr = 20000
	}
	warm = t.Warmup
	if warm == 0 {
		warm = 5 * instr
	}
	maxCy = t.MaxCycles
	if maxCy == 0 {
		maxCy = (warm + instr) * 400
	}
	return instr, warm, maxCy
}

// simMemo shares design-point simulation results across every
// HardwareTarget in the process: Table1, CaseStudyI, the benchmarks, and
// speculative frontier batches all draw from (and fill) the same pool.
// The name makes it persist through ExportMemos — the checkpoint layer's
// durable cache.
var simMemo = parallel.NewNamedMemo[core.Measurement]("explore.sim")

// DefaultWatchdogCycles is the evaluation watchdog's no-progress budget
// when the target does not set one. Healthy simulations retire something
// every few hundred cycles (a DRAM round trip); a million dead cycles is
// a livelock, not a slow phase.
const DefaultWatchdogCycles = 1_000_000

// ctx returns the cancellation context, defaulting to Background.
func (t *HardwareTarget) ctx() context.Context {
	if t.Ctx != nil {
		return t.Ctx
	}
	//lint:ignore ctxflow documented default when the optional Ctx field is unset
	return context.Background()
}

// simulate runs the cycle-level simulation of point p under the target's
// workload and budgets, memoised on the full input fingerprint. The
// body is RunSimSpec — a pure function of the spec — either in-process
// or, when a sweep fabric is active, dispatched to a worker; both paths
// fill the same memo entry, so checkpoints and resumes are oblivious to
// where a result was computed. A cancelled or livelocked run surfaces
// as a resilience.Abort panic, since the core.Target interface has no
// error channel; cancellations are not memoised, livelocks
// (deterministic) are.
func (t *HardwareTarget) simulate(p Point) core.Measurement {
	instr, warm, maxCy := t.budgets()
	spec := SimSpec{
		Point:          p,
		Profile:        t.Profile,
		Instructions:   instr,
		Warmup:         warm,
		MaxCycles:      maxCy,
		Observe:        t.Observe,
		Timeline:       t.Timeline,
		TimelineWindow: t.TimelineWindow,
		WarmupFast:     t.WarmupFast,
		WatchdogCycles: t.WatchdogCycles,
	}
	key := spec.MemoKey()
	m, err := simMemo.DoCtx(t.ctx(), key, func(ctx context.Context) (core.Measurement, error) {
		var m core.Measurement
		if sharded, err := fabric.Compute(ctx, SimKind, key, spec, &m); sharded {
			return m, err
		}
		return RunSimSpec(ctx, spec)
	})
	if err != nil {
		panic(resilience.Abort{Err: err})
	}
	return m
}

// Evaluate simulates an arbitrary point and returns its measurement.
// Evaluations() and History() record the call whether or not the result
// came from the shared memo, so the reported simulation counts match the
// serial, memo-cold walk exactly. The faultinject point "explore.evaluate"
// (detail: workload name) lets the chaos tests kill a specific workload's
// evaluation mid-walk.
func (t *HardwareTarget) Evaluate(p Point) core.Measurement {
	if err := faultinject.Hit("explore.evaluate", t.Profile.Name); err != nil {
		panic(resilience.Abort{Err: err})
	}
	m := t.simulate(p)
	t.evals++
	ev := Evaluation{Point: p, M: m}
	t.history = append(t.history, ev)
	if t.OnEvaluate != nil {
		t.OnEvaluate(ev)
	}
	return m
}

// PreEvaluate warms the shared memo with the given points in one
// parallel batch. It records nothing in the target's history or
// evaluation count — it only moves simulation work off the serial path.
// Speculative errors are dropped: the serial walk re-encounters any
// deterministic failure itself, and cancellations must not poison the
// memo (DoCtx already drops them).
func (t *HardwareTarget) PreEvaluate(points []Point) {
	_, _ = parallel.MapCtx(t.ctx(), points, func(_ context.Context, p Point) (struct{}, error) {
		return struct{}{}, func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = resilience.Recover(r)
				}
			}()
			t.simulate(p)
			return nil
		}()
	})
}

// frontier returns the current point plus every configuration one
// algorithm step away: each single-knob bump (the OptimizeL1/OptimizeL2
// candidates) and each single-knob drop ReduceOverprovision may take.
func (t *HardwareTarget) frontier() []Point {
	points := []Point{t.Current()}
	for k := 0; k < 6; k++ {
		ix := t.ix
		if ix[k]+1 < t.menuLen(k) {
			ix[k]++
			points = append(points, t.Space.At(ix))
		}
		if k < 4 && t.ix[k] > 0 { // drops only touch the four L1-layer knobs
			ix = t.ix
			ix[k]--
			points = append(points, t.Space.At(ix))
		}
	}
	return points
}

// menuLen returns the menu length of parameter k.
func (t *HardwareTarget) menuLen(k int) int {
	switch k {
	case 0:
		return len(t.Space.IssueWidths)
	case 1:
		return len(t.Space.IWSizes)
	case 2:
		return len(t.Space.ROBSizes)
	case 3:
		return len(t.Space.L1Ports)
	case 4:
		return len(t.Space.MSHRs)
	default:
		return len(t.Space.L2Banks)
	}
}

// bump advances parameter k to its next menu value; false at the top.
func (t *HardwareTarget) bump(k int) bool {
	if t.ix[k]+1 >= t.menuLen(k) {
		return false
	}
	t.ix[k]++
	return true
}

// drop lowers parameter k one menu step; false at the bottom.
func (t *HardwareTarget) drop(k int) bool {
	if t.ix[k] == 0 {
		return false
	}
	t.ix[k]--
	return true
}

// OptimizeL1 implements core.Target: raise the next L1-layer knob in
// round-robin order (the paper: "We increase IW, ROB, L1 cache port
// number and pipeline width").
func (t *HardwareTarget) OptimizeL1() bool {
	for range l1Knobs {
		k := l1Knobs[t.rrL1%len(l1Knobs)]
		t.rrL1++
		if t.bump(k) {
			return true
		}
	}
	return false
}

// OptimizeL2 implements core.Target: raise MSHRs / L2 interleaving.
func (t *HardwareTarget) OptimizeL2() bool {
	for range l2Knobs {
		k := l2Knobs[t.rrL2%len(l2Knobs)]
		t.rrL2++
		if t.bump(k) {
			return true
		}
	}
	return false
}

// ReduceOverprovision implements core.Target: withdraw the L1-layer knob
// whose *downward* step keeps the highest remaining value, preferring to
// shrink the big array structures (IW, ROB) first — the paper's D→E move.
func (t *HardwareTarget) ReduceOverprovision() bool {
	for _, k := range [4]int{1, 2, 0, 3} { // IW, ROB, issue, ports
		if t.drop(k) {
			return true
		}
	}
	return false
}

// RunAlgorithm drives the LPM algorithm over the target and returns its
// result together with the final point.
func (t *HardwareTarget) RunAlgorithm(cfg core.AlgorithmConfig) (core.Result, Point) {
	res := core.Run(t, cfg)
	return res, t.Current()
}

// RunAlgorithmCtx is RunAlgorithm under a cancellation context: it
// recovers the resilience.Abort panics the evaluation path uses to
// escape the error-less Target interface and returns them as ordinary
// errors (errors.As reaches a *resilience.LivelockError through the
// chain). Non-Abort panics — genuine bugs — keep propagating.
func (t *HardwareTarget) RunAlgorithmCtx(ctx context.Context, cfg core.AlgorithmConfig) (res core.Result, p Point, err error) {
	t.Ctx = ctx
	defer func() {
		p = t.Current()
		if r := recover(); r != nil {
			err = resilience.Recover(r)
		}
	}()
	res = core.Run(t, cfg)
	return res, t.Current(), nil
}
