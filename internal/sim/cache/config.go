// Package cache implements the cache substrate of the LPM reproduction: a
// set-associative, multi-ported, banked, pipelined, non-blocking cache
// with MSHRs (miss status holding registers), write-back/write-allocate
// stores, and pluggable replacement. These are exactly the
// concurrency-driven mechanisms the paper enumerates as sources of hit
// concurrency (multi-port, multi-bank, pipelined structures -> C_H) and
// miss concurrency (non-blocking caches -> C_M).
//
// A cache is cycle-driven: the owner calls Tick once per cycle, in
// hierarchy order (L1 before L2 before DRAM). Cross-layer communication
// takes effect on the following cycle, modelling a one-cycle interconnect
// hop. An attached analyzer.Analyzer observes every access and classifies
// cycles per the paper's Fig. 1 semantics.
package cache

import (
	"fmt"
)

// ReplPolicy selects a replacement policy.
type ReplPolicy uint8

// Replacement policies.
const (
	// LRU evicts the least recently used way.
	LRU ReplPolicy = iota
	// RandomRepl evicts a pseudo-random way.
	RandomRepl
	// FIFORepl evicts ways in fill order (ablation baseline).
	FIFORepl
)

// String implements fmt.Stringer.
func (r ReplPolicy) String() string {
	switch r {
	case LRU:
		return "LRU"
	case RandomRepl:
		return "Random"
	case FIFORepl:
		return "FIFO"
	default:
		return fmt.Sprintf("ReplPolicy(%d)", uint8(r))
	}
}

// Config describes one cache. All sizes are in bytes.
type Config struct {
	// Name labels the cache in reports (e.g. "L1D-0", "L2").
	Name string
	// Size is the total capacity.
	Size uint64
	// BlockSize is the line size.
	BlockSize uint64
	// Assoc is the number of ways per set. Size/(BlockSize*Assoc) sets
	// must come out a power of two... (not required; any positive count
	// works, indexing is modulo).
	Assoc int
	// HitLatency is the hit-operation time in cycles (the paper's H).
	HitLatency int
	// Ports is the number of new accesses the cache can begin per cycle
	// (multi-port structure; raises C_H).
	Ports int
	// Banks is the number of independently addressed banks; each bank can
	// begin at most one access per cycle. Banks == interleaving degree in
	// the paper's Table I.
	Banks int
	// MSHRs is the number of distinct outstanding missed blocks
	// (non-blocking cache; raises C_m and C_M).
	MSHRs int
	// MSHRTargets is the maximum number of coalesced accesses per MSHR;
	// 0 means 8.
	MSHRTargets int
	// InputQueue bounds requests accepted from the layer above but not
	// yet in service; 0 means 2*Ports+8.
	InputQueue int
	// Coalesce enables attaching secondary misses to an existing MSHR for
	// the same block. Disabling it is an ablation (each miss then needs
	// its own MSHR).
	Coalesce bool
	// Repl selects the replacement policy.
	Repl ReplPolicy
	// Insert selects the fill insertion policy (MRU conventional; LIP or
	// BIP protect reused sets from streaming pollution — the paper's
	// "selective cache replacement" future-work direction).
	Insert InsertPolicy
	// SrcID identifies this cache to the layer below (e.g. the core
	// index of a private L1); it keys partitioning decisions there.
	SrcID int
	// PartitionWays, when non-nil, restricts each requestor to a set of
	// ways (way partitioning of a shared cache). Requestors absent from
	// the map use every way.
	PartitionWays map[int][]int
	// MSHRQuota, when non-nil, bounds outstanding primary misses per
	// requestor (the paper's "memory parallelism partition" direction).
	// Requestors absent from the map are bounded only by MSHRs.
	MSHRQuota map[int]int
	// Prefetch enables a next-line prefetcher of the given degree: each
	// demand primary miss to block B also fetches B+1..B+Prefetch.
	Prefetch int
	// Seed feeds the random replacement policy.
	Seed uint64
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cache: config has no name")
	case c.Size == 0:
		return fmt.Errorf("cache %s: zero size", c.Name)
	case c.BlockSize == 0 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockSize)
	case c.Size%c.BlockSize != 0:
		return fmt.Errorf("cache %s: size %d not a multiple of block size %d", c.Name, c.Size, c.BlockSize)
	case c.Assoc <= 0:
		return fmt.Errorf("cache %s: associativity %d", c.Name, c.Assoc)
	case c.Size/(c.BlockSize*uint64(c.Assoc)) == 0:
		return fmt.Errorf("cache %s: fewer than one set", c.Name)
	case c.HitLatency <= 0:
		return fmt.Errorf("cache %s: hit latency %d", c.Name, c.HitLatency)
	case c.Ports <= 0:
		return fmt.Errorf("cache %s: ports %d", c.Name, c.Ports)
	case c.Banks <= 0:
		return fmt.Errorf("cache %s: banks %d", c.Name, c.Banks)
	case c.MSHRs <= 0:
		return fmt.Errorf("cache %s: MSHRs %d", c.Name, c.MSHRs)
	case c.MSHRTargets < 0 || c.InputQueue < 0:
		return fmt.Errorf("cache %s: negative queue bound", c.Name)
	case c.Prefetch < 0:
		return fmt.Errorf("cache %s: negative prefetch degree", c.Name)
	}
	for src, ways := range c.PartitionWays {
		if len(ways) == 0 {
			return fmt.Errorf("cache %s: requestor %d partitioned to zero ways", c.Name, src)
		}
		for _, w := range ways {
			if w < 0 || w >= c.Assoc {
				return fmt.Errorf("cache %s: requestor %d assigned way %d of %d", c.Name, src, w, c.Assoc)
			}
		}
	}
	for src, q := range c.MSHRQuota {
		if q <= 0 {
			return fmt.Errorf("cache %s: requestor %d has MSHR quota %d", c.Name, src, q)
		}
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c *Config) Sets() uint64 { return c.Size / (c.BlockSize * uint64(c.Assoc)) }

// Lower is the next layer down (another cache or main memory). Request
// asks for a whole block on behalf of requestor src (an upper cache's
// SrcID); done (nil for writebacks) is invoked during a later cycle's
// Tick of the lower component when the block is available. Request
// returns false when the lower layer cannot accept more requests this
// cycle; the caller must retry.
type Lower interface {
	Request(cycle uint64, src int, blockAddr uint64, write bool, done func(cycle uint64)) bool
}

// InsertPolicy selects where a filled block enters the replacement
// order — the "selective cache replacement" direction of the paper's
// future work. Streaming fills inserted near the LRU position cannot
// evict a reused working set.
type InsertPolicy uint8

// Insertion policies.
const (
	// MRUInsert is conventional insertion at the most recent position.
	MRUInsert InsertPolicy = iota
	// LIPInsert inserts at the LRU position; a block must be re-touched
	// to be promoted.
	LIPInsert
	// BIPInsert inserts at LRU except for a 1/32 fraction promoted to
	// MRU (bimodal insertion), adapting to mixed reuse.
	BIPInsert
)

// String implements fmt.Stringer.
func (p InsertPolicy) String() string {
	switch p {
	case MRUInsert:
		return "MRU"
	case LIPInsert:
		return "LIP"
	case BIPInsert:
		return "BIP"
	default:
		return fmt.Sprintf("InsertPolicy(%d)", uint8(p))
	}
}
