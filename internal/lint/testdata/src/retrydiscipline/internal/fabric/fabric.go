// Package fabric is the fixture's wire surface: the frame and worker
// entry points the analyzer treats as network retry targets.
package fabric

import (
	"context"
	"net"
	"time"

	"lpm/internal/resilience/fleet"
)

// Msg is a placeholder frame.
type Msg struct{ Type string }

// ReadFrame reads one frame.
func ReadFrame(conn net.Conn) (Msg, error) { return Msg{}, nil }

// WriteFrame writes one frame.
func WriteFrame(conn net.Conn, m Msg) error { return nil }

// RunWorker serves granules until the session ends.
func RunWorker(ctx context.Context, addr string) error {
	_, err := net.Dial("tcp", addr)
	return err
}

// badRedial hammers the coordinator with a hand-rolled sleep schedule.
func badRedial(ctx context.Context, addr string) {
	for ctx.Err() == nil {
		_ = RunWorker(ctx, addr)
		time.Sleep(100 * time.Millisecond) // want "hand-rolled retry pacing"
	}
}

// badDialWait re-dials with a raw timer instead of the policy.
func badDialWait(addr string) net.Conn {
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn
		}
		<-time.After(time.Second) // want "hand-rolled retry pacing"
	}
}

// badFrameResend paces a frame re-send loop by hand.
func badFrameResend(conn net.Conn, m Msg) {
	for i := 0; i < 3; i++ {
		if WriteFrame(conn, m) == nil {
			return
		}
		t := time.NewTimer(50 * time.Millisecond) // want "hand-rolled retry pacing"
		<-t.C
	}
}

// goodRedial paces reconnects through the shared policy.
func goodRedial(ctx context.Context, addr string, policy fleet.RetryPolicy) {
	for attempt := 0; ctx.Err() == nil; attempt++ {
		_ = RunWorker(ctx, addr)
		if err := policy.Sleep(ctx, attempt); err != nil {
			return
		}
	}
}

// goodPoll sleeps in a loop that does no network I/O: pacing a local
// poll is not a retry-discipline concern.
func goodPoll(done func() bool) {
	for !done() {
		time.Sleep(time.Millisecond)
	}
}

// goodNestedScope sleeps in an inner bookkeeping loop while the outer
// loop dials; the levels are independent and only same-level pairing
// is a finding.
func goodNestedScope(addr string, steps []int) {
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			_ = conn.Close()
			return
		}
		for range steps {
			time.Sleep(time.Millisecond)
		}
	}
}
