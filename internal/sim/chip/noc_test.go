package chip

import (
	"testing"

	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

func TestChipWithNoCValidates(t *testing.T) {
	cfg := SingleCore("403.gcc")
	n := noc.Default(1)
	cfg.NoC = &n
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	badNoC := n
	badNoC.Bandwidth = 0
	bad.NoC = &badNoC
	if err := bad.Validate(); err == nil {
		t.Fatal("bad NoC accepted")
	}
}

func TestNoCAddsL2Latency(t *testing.T) {
	run := func(withNoC bool) float64 {
		cfg := SingleCore("403.gcc")
		cfg.Cores[0].L1 = DefaultL1("L1D-0", 4*KB) // plenty of L2 traffic
		if withNoC {
			n := noc.Default(1)
			n.Latency = 12
			cfg.NoC = &n
		}
		cfg.Cores[0].Workload = trace.NewSynthetic(trace.MustProfile("403.gcc"))
		ch := New(cfg)
		ch.RunCycles(30000)
		ch.ResetCounters()
		ch.RunCycles(60000)
		return ch.Snapshot().Cores[0].CPU.IPC()
	}
	direct, routed := run(false), run(true)
	if routed >= direct {
		t.Fatalf("NoC latency did not cost anything: direct %.3f routed %.3f", direct, routed)
	}
}

func TestNoCDrainsWithChip(t *testing.T) {
	cfg := SingleCore("429.mcf")
	n := noc.Default(1)
	cfg.NoC = &n
	ch := New(cfg)
	if ch.Router() == nil {
		t.Fatal("router missing")
	}
	_, done := ch.Run(5000, 20_000_000)
	if !done {
		t.Fatal("did not retire")
	}
	if ch.Busy() {
		t.Fatal("router left traffic in flight after drain")
	}
	if ch.Router().Stats().Requests == 0 {
		t.Fatal("router saw no traffic")
	}
}

func TestNoCContentionRaisesQueueing(t *testing.T) {
	// Sixteen cores sharing a narrow fabric must queue.
	gens := make([]trace.Generator, 16)
	for i, nme := range trace.ProfileNames() {
		gens[i] = trace.NewSynthetic(trace.MustProfile(nme))
	}
	cfg := NUCA16(gens)
	n := noc.Default(16)
	n.Bandwidth = 1
	cfg.NoC = &n
	ch := New(cfg)
	ch.RunCycles(60000)
	if q := ch.Router().Stats().AvgQueueing(); q <= 0.5 {
		t.Fatalf("avg queueing %.2f on a bandwidth-1 fabric with 16 cores", q)
	}
}
