// Package chip is a miniature of the tiered chip: detailed-only entry
// points must open with the requireDetailed guard.
package chip

// Report is a counter snapshot.
type Report struct{ Cycles uint64 }

// Chip is the assembled system.
type Chip struct {
	tier uint8
	now  uint64
}

func (c *Chip) requireDetailed(op string) {
	if c.tier != 0 {
		panic("chip: " + op + " requires the detailed tier")
	}
}

// Tick advances one cycle; guarded, so no finding.
func (c *Chip) Tick() {
	c.requireDetailed("Tick")
	c.now++
}

// Snapshot reads the counters without the guard.
func (c *Chip) Snapshot() Report { // want "entry point Snapshot must open with the requireDetailed guard"
	return Report{Cycles: c.now}
}

// Measure guards too late: the counter read precedes it.
func (c *Chip) Measure(i int) Report { // want "entry point Measure must open with the requireDetailed guard"
	r := Report{Cycles: c.now}
	c.requireDetailed("Measure")
	_ = i
	return r
}

// Now is a plain getter, not in the detailed-only table; no finding.
func (c *Chip) Now() uint64 { return c.now }
