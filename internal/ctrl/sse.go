package ctrl

// Server-sent events for the per-run timeline: each closed window
// streams to the client as it lands, with drop accounting made visible
// as its own event type when a slow consumer overran its ring.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// SSEHandler streams a run's hub as text/event-stream. Event types:
//
//	event: window  data: {timeseries.Window}
//	event: drop    data: {"dropped": N}   — N ring overruns just before
//	                                        the next window
//	event: done    data: {}               — the run finished; stream ends
//
// The stream also ends when the client disconnects or the server drains
// on shutdown (both arrive through the request context).
func SSEHandler(hub *Hub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		sub := hub.Subscribe(0)
		defer sub.Close()
		for {
			e, dropped, ok := sub.Next(r.Context())
			if !ok {
				return
			}
			if dropped > 0 {
				if err := writeSSE(w, "drop", struct {
					Dropped uint64 `json:"dropped"`
				}{dropped}); err != nil {
					return
				}
			}
			switch e.Type {
			case "window":
				if err := writeSSE(w, "window", e.Window); err != nil {
					return
				}
			case "done":
				_ = writeSSE(w, "done", struct{}{})
				fl.Flush()
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one SSE frame with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
