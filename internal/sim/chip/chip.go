// Package chip assembles the full-system simulator of the LPM
// reproduction: N out-of-order cores with private L1 data caches
// (optionally heterogeneous — the NUCA organisation of the paper's
// Fig. 5), a shared banked L2 acting as last-level cache, and a DRAM
// main memory. It stands in for the paper's GEM5 + DRAMSim2 testbed.
//
// The chip advances in lockstep cycles; per cycle the components tick in
// hierarchy order (cores, L1s, L2, DRAM), with cross-layer messages
// taking effect the following cycle. Every layer carries a C-AMAT
// analyzer, so all LPM model inputs are measured online, exactly as the
// paper's Fig. 4 detecting system does.
package chip

import (
	"context"
	"fmt"

	"lpm/internal/analyzer"
	"lpm/internal/obs"
	"lpm/internal/sim/cache"
	"lpm/internal/sim/coherence"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

// CoreSlot pairs a core configuration with its private L1 and workload.
type CoreSlot struct {
	// CPU configures the out-of-order core.
	CPU cpu.Config
	// L1 configures the private L1 data cache.
	L1 cache.Config
	// Workload feeds the core; nil leaves the core idle.
	Workload trace.Generator
}

// Config describes a chip.
type Config struct {
	// Name labels the chip in reports.
	Name string
	// Cores lists the core slots; heterogeneity is allowed.
	Cores []CoreSlot
	// L2 configures the shared last-level cache.
	L2 cache.Config
	// L3, when non-nil, adds a third cache level between the L2 and main
	// memory — the paper's "extension to additional cache levels".
	L3 *cache.Config
	// NoC, when non-nil, inserts a queued crossbar between the private
	// L1s and the shared L2 instead of the default 1-cycle hop.
	NoC *noc.Config
	// Coherent, when true, interposes a directory-based MSI protocol
	// between the L1s and the rest of the hierarchy; needed only when
	// workloads genuinely share addresses. CoherenceInvalLatency is the
	// per-write invalidation delay in cycles.
	Coherent              bool
	CoherenceInvalLatency uint64
	// Mem configures main memory.
	Mem dram.Config
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("chip: config has no name")
	}
	if len(c.Cores) == 0 {
		return fmt.Errorf("chip %s: no cores", c.Name)
	}
	for i := range c.Cores {
		if err := c.Cores[i].CPU.Validate(); err != nil {
			return fmt.Errorf("chip %s core %d: %w", c.Name, i, err)
		}
		if err := c.Cores[i].L1.Validate(); err != nil {
			return fmt.Errorf("chip %s core %d: %w", c.Name, i, err)
		}
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("chip %s: %w", c.Name, err)
	}
	if c.L3 != nil {
		if err := c.L3.Validate(); err != nil {
			return fmt.Errorf("chip %s: %w", c.Name, err)
		}
	}
	if c.NoC != nil {
		if err := c.NoC.Validate(); err != nil {
			return fmt.Errorf("chip %s: %w", c.Name, err)
		}
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("chip %s: %w", c.Name, err)
	}
	return nil
}

// Chip is the assembled system. Create with New.
type Chip struct {
	cfg    Config
	cores  []*cpu.Core
	l1s    []*cache.Cache
	l2     *cache.Cache
	l3     *cache.Cache         // nil without a third level
	router *noc.Router          // nil without a NoC
	dir    *coherence.Directory // nil unless coherent
	mem    *dram.DRAM
	now    uint64
	sched  []component   // flat tick schedule, built once in New
	ffOff  bool          // true disables quiescent-cycle fast-forward
	tier   Tier          // execution fidelity (tier.go)
	reg    *obs.Registry // nil unless EnableObs was called
	tr     *obs.Tracer   // nil unless AttachTracer was called
	ts     *tsState      // nil unless EnableTimeseries was called

	// Hardened-execution state (watchdog.go): cancellation context, the
	// watchdog's no-progress budget and last observation, and the
	// latched run error that stops every run loop.
	ctx         context.Context
	wdBudget    uint64
	wdLastSig   uint64
	wdLastCycle uint64
	runErr      error
}

// New builds the chip; it panics on invalid configuration.
func New(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ch := &Chip{cfg: cfg}
	ch.l2 = cache.New(cfg.L2)
	ch.mem = dram.New(cfg.Mem)
	if cfg.L3 != nil {
		ch.l3 = cache.New(*cfg.L3)
		ch.l2.SetLower(ch.l3)
		ch.l3.SetLower(ch.mem)
	} else {
		ch.l2.SetLower(ch.mem)
	}
	var l1Lower cache.Lower = ch.l2
	if cfg.NoC != nil {
		ch.router = noc.New(*cfg.NoC)
		ch.router.SetLower(ch.l2)
		l1Lower = ch.router
	}
	var uppers []coherence.Invalidator
	if cfg.Coherent {
		// The directory keeps a reference to the slice; the L1s are
		// attached as they are built below.
		uppers = make([]coherence.Invalidator, len(cfg.Cores))
		ch.dir = coherence.New(uppers, l1Lower)
		ch.dir.InvalidationLatency = cfg.CoherenceInvalLatency
		l1Lower = ch.dir
	}
	for i := range cfg.Cores {
		slot := &cfg.Cores[i]
		slot.L1.SrcID = i
		l1 := cache.New(slot.L1)
		l1.SetLower(l1Lower)
		if uppers != nil {
			uppers[i] = l1
		}
		ch.l1s = append(ch.l1s, l1)
		if slot.Workload != nil {
			ch.cores = append(ch.cores, cpu.New(slot.CPU, slot.Workload, l1))
		} else {
			ch.cores = append(ch.cores, nil)
		}
	}
	ch.buildSched()
	return ch
}

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Now returns the current cycle.
func (c *Chip) Now() uint64 { return c.now }

// Core returns core i's model (nil for idle slots).
func (c *Chip) Core(i int) *cpu.Core { return c.cores[i] }

// L1 returns core i's private cache.
func (c *Chip) L1(i int) *cache.Cache { return c.l1s[i] }

// L2 returns the shared last-level cache.
func (c *Chip) L2() *cache.Cache { return c.l2 }

// L3 returns the optional third-level cache (nil when absent).
func (c *Chip) L3() *cache.Cache { return c.l3 }

// Router returns the optional interconnect (nil when absent).
func (c *Chip) Router() *noc.Router { return c.router }

// Directory returns the optional coherence directory (nil when absent).
func (c *Chip) Directory() *coherence.Directory { return c.dir }

// Mem returns the DRAM model.
func (c *Chip) Mem() *dram.DRAM { return c.mem }

// EnableObs creates a metrics registry and attaches every component to
// it under stable prefixes (cpu.N, l1.N, l2, l3, noc, dram). Idempotent:
// repeat calls return the existing registry. The registry is owned by
// this chip's simulation goroutine.
func (c *Chip) EnableObs() *obs.Registry {
	if c.reg != nil {
		return c.reg
	}
	c.reg = obs.NewRegistry()
	for i, core := range c.cores {
		if core != nil {
			core.AttachObs(c.reg, fmt.Sprintf("cpu.%d", i))
		}
		c.l1s[i].AttachObs(c.reg, fmt.Sprintf("l1.%d", i))
	}
	c.l2.AttachObs(c.reg, "l2")
	if c.l3 != nil {
		c.l3.AttachObs(c.reg, "l3")
	}
	if c.router != nil {
		c.router.AttachObs(c.reg, "noc")
	}
	c.mem.AttachObs(c.reg, "dram")
	return c.reg
}

// Registry returns the chip's metrics registry (nil unless EnableObs was
// called).
func (c *Chip) Registry() *obs.Registry { return c.reg }

// AttachTracer routes memory-request lifecycle events from every cache
// level and the DRAM into t. Pass nil to detach.
func (c *Chip) AttachTracer(t *obs.Tracer) {
	c.tr = t
	for _, l1 := range c.l1s {
		l1.AttachTracer(t)
	}
	c.l2.AttachTracer(t)
	if c.l3 != nil {
		c.l3.AttachTracer(t)
	}
	c.mem.AttachTracer(t)
}

// Tracer returns the attached event tracer (nil when tracing is off).
func (c *Chip) Tracer() *obs.Tracer { return c.tr }

// ObsSnapshot publishes every component's accumulated stats into the
// registry and captures a snapshot. It returns nil when observability is
// not enabled.
func (c *Chip) ObsSnapshot() *obs.Snapshot {
	if c.reg == nil {
		return nil
	}
	for i, core := range c.cores {
		if core != nil {
			core.PublishObs()
		}
		c.l1s[i].PublishObs()
	}
	c.l2.PublishObs()
	if c.l3 != nil {
		c.l3.PublishObs()
	}
	if c.router != nil {
		c.router.PublishObs()
	}
	c.mem.PublishObs()
	return c.reg.Snapshot()
}

// Tick advances the whole chip one cycle, driving the flat schedule in
// hierarchy order (cores, L1s, directory, NoC, L2, L3, DRAM).
func (c *Chip) Tick() {
	c.requireDetailed("Tick")
	c.now++
	for _, comp := range c.sched {
		comp.Tick(c.now)
	}
	if c.ts != nil {
		c.tsAccumulate()
		c.ts.s.Tick(c.now)
	}
	if c.ctx != nil && c.now&1023 == 0 {
		if err := c.ctx.Err(); err != nil && c.runErr == nil {
			c.runErr = err
		}
	}
	if c.wdBudget > 0 && c.now-c.wdLastCycle >= c.wdBudget/4 {
		c.checkProgress()
	}
}

// Busy reports whether any component still has work in flight.
func (c *Chip) Busy() bool {
	for _, core := range c.cores {
		if core != nil && core.Busy() {
			return true
		}
	}
	for _, l1 := range c.l1s {
		if l1.Busy() {
			return true
		}
	}
	if c.l3 != nil && c.l3.Busy() {
		return true
	}
	if c.router != nil && c.router.Busy() {
		return true
	}
	if c.dir != nil && c.dir.Busy() {
		return true
	}
	return c.l2.Busy() || c.mem.Busy()
}

// RunCycles advances exactly n cycles (fewer if a run error latches).
func (c *Chip) RunCycles(n uint64) {
	limit := c.now + n
	for c.now < limit && c.runErr == nil {
		c.tryFastForward(limit - 1)
		c.Tick()
	}
}

// RunUntilRetired advances until every active core has retired at least
// minInstr instructions or maxCycles elapse, without halting fetch or
// draining — the warm-up phase of an interval measurement. It returns the
// cycles consumed.
func (c *Chip) RunUntilRetired(minInstr uint64, maxCycles uint64) uint64 {
	start := c.now
	limit := start + maxCycles
	for c.now < limit && c.runErr == nil {
		done := true
		for _, core := range c.cores {
			if core != nil && !core.Halted() && core.Retired() < minInstr {
				done = false
				break
			}
		}
		if done {
			break
		}
		c.tryFastForward(limit - 1)
		c.Tick()
	}
	return c.now - start
}

// Run executes until every active core has retired at least minInstr
// instructions (then halts fetch and drains in-flight work), or until
// maxCycles elapse. It returns the number of cycles consumed and whether
// all cores reached the target.
func (c *Chip) Run(minInstr uint64, maxCycles uint64) (cycles uint64, completed bool) {
	start := c.now
	limit := start + maxCycles
	for c.now < limit && c.runErr == nil {
		done := true
		for _, core := range c.cores {
			if core == nil || core.Halted() {
				continue
			}
			if core.Retired() >= minInstr {
				core.Halt()
			} else {
				done = false
			}
		}
		if done {
			break
		}
		c.tryFastForward(limit - 1)
		c.Tick()
	}
	// Drain.
	for c.Busy() && c.now < limit && c.runErr == nil {
		c.tryFastForward(limit - 1)
		c.Tick()
	}
	completed = true
	for _, core := range c.cores {
		if core != nil && core.Retired() < minInstr {
			completed = false
		}
	}
	return c.now - start, completed
}

// ResetCounters zeroes every analyzer and stats counter on the chip while
// preserving microarchitectural state — the online interval measurement
// the LPM algorithm performs.
func (c *Chip) ResetCounters() {
	// Close the in-progress time-series window against the pre-reset
	// counters first: its deltas and stall charges are only valid
	// relative to the old baselines, and conservation requires every
	// accumulated cycle to land in a window.
	if c.ts != nil {
		c.ts.s.Flush(c.now)
	}
	for _, core := range c.cores {
		if core != nil {
			core.ResetCounters()
		}
	}
	for _, l1 := range c.l1s {
		l1.ResetCounters()
	}
	c.l2.ResetCounters()
	if c.l3 != nil {
		c.l3.ResetCounters()
	}
	if c.router != nil {
		c.router.ResetCounters()
	}
	if c.dir != nil {
		c.dir.ResetCounters()
	}
	c.mem.ResetCounters()
	// The registry mirrors the per-window counters, so it resets with
	// them; the next ObsSnapshot covers exactly one measurement window.
	c.reg.ResetCounters()
	// The sampler's delta baselines track the cumulative counters, so
	// they re-anchor with them (at zero).
	if c.ts != nil {
		c.ts.rebase(c)
	}
}

// CoreReport aggregates one core's view of the system.
type CoreReport struct {
	// Name is the workload name (empty for idle cores).
	Name string
	// CPU carries the core counters.
	CPU cpu.Stats
	// L1 carries the private cache's C-AMAT parameters and event stats.
	L1      analyzer.Params
	L1Stats cache.Stats
}

// Report is a full-chip measurement snapshot.
type Report struct {
	// Cycles is the chip cycle counter at snapshot time.
	Cycles uint64
	// Cores holds one entry per slot.
	Cores []CoreReport
	// L2 carries the shared cache's C-AMAT parameters and event stats.
	L2      analyzer.Params
	L2Stats cache.Stats
	// Mem carries the DRAM counters.
	Mem dram.Stats
}

// Snapshot collects a Report.
func (c *Chip) Snapshot() Report {
	c.requireDetailed("Snapshot")
	r := Report{Cycles: c.now, L2: c.l2.Analyzer().Snapshot(), L2Stats: c.l2.Stats(), Mem: c.mem.Stats()}
	for i, core := range c.cores {
		cr := CoreReport{L1: c.l1s[i].Analyzer().Snapshot(), L1Stats: c.l1s[i].Stats()}
		if core != nil {
			cr.CPU = core.Stats()
			cr.Name = c.cfg.Cores[i].Workload.Name()
		}
		r.Cores = append(r.Cores, cr)
	}
	return r
}

// AggregateL1 sums all per-core L1 analyzer parameters, the chip-wide L1
// view used when reporting a single LPMR per configuration.
func (r Report) AggregateL1() analyzer.Params {
	var sum analyzer.Params
	for _, cr := range r.Cores {
		sum = sum.Add(cr.L1)
	}
	return sum
}

// MeasureCPIexe runs cfg's core alone against a perfect memory with the
// given hit latency for n instructions and returns cycles per instruction
// — CPI_exe of Eq. (5). The generator is Reset before and after.
func MeasureCPIexe(cfg cpu.Config, gen trace.Generator, hitLatency uint64, n uint64) float64 {
	gen.Reset()
	mem := &cpu.Perfect{Latency: hitLatency}
	core := cpu.New(cfg, gen, mem)
	var cy uint64
	for core.Retired() < n && cy < n*1000 {
		cy++
		core.Tick(cy)
		mem.Tick(cy)
	}
	gen.Reset()
	return core.Stats().CPI()
}
