package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	out, err := MapPool(NewPool(8), jobs, func(i int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // shuffle completion order
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(nil, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty Map = (%v, %v)", out, err)
	}
	out, err = Map([]int{41}, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("single Map = (%v, %v)", out, err)
	}
}

func TestMapRespectsWorkerCap(t *testing.T) {
	const cap = 3
	var live, peak atomic.Int64
	jobs := make([]int, 24)
	_, err := MapPool(NewPool(cap), jobs, func(int) (struct{}, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		live.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Fatalf("observed %d concurrent jobs, cap is %d", p, cap)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := MapPool(NewPool(4), jobs, func(i int) (int, error) {
			if i == 3 {
				panic("boom")
			}
			return i, nil
		})
		if err == nil {
			t.Error("want error from panicked job")
		} else if !strings.Contains(err.Error(), "job 3 panicked: boom") {
			t.Errorf("error %q does not name the panicked job", err)
		}
		// Healthy jobs still completed.
		if out[7] != 7 {
			t.Errorf("out[7] = %d, want 7", out[7])
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map deadlocked after a job panic")
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("job failed")
	_, err := MapPool(NewPool(8), jobs, func(i int) (int, error) {
		if i >= 2 {
			return 0, fmt.Errorf("%w: %d", wantErr, i)
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
	// The lowest-indexed failure is the one the serial loop would hit.
	if got := err.Error(); !strings.HasSuffix(got, ": 2") {
		t.Fatalf("err = %q, want the job-2 error", got)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	if got := Workers(); got != 2 {
		t.Fatalf("Workers() = %d after SetWorkers(2)", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset", got)
	}
}

func TestMemoHitMissCounters(t *testing.T) {
	m := NewMemo[int]()
	var calls atomic.Int64
	compute := func() (int, error) { calls.Add(1); return 7, nil }
	for i := 0; i < 5; i++ {
		v, err := m.Do("k", compute)
		if v != 7 || err != nil {
			t.Fatalf("Do = (%d, %v)", v, err)
		}
	}
	if _, err := m.Do("other", compute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2", calls.Load())
	}
	hits, misses := m.Stats()
	if hits != 4 || misses != 2 {
		t.Fatalf("Stats = (%d hits, %d misses), want (4, 2)", hits, misses)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Reset()
	hits, misses = m.Stats()
	if hits != 0 || misses != 0 || m.Len() != 0 {
		t.Fatalf("after Reset: hits=%d misses=%d len=%d", hits, misses, m.Len())
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int]()
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 11, nil
			})
			if v != 11 || err != nil {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", calls.Load())
	}
}

func TestMemoPanicDoesNotDeadlockWaiters(t *testing.T) {
	m := NewMemo[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err1 := m.Do("k", func() (int, error) { panic("memo boom") })
		if err1 == nil || !strings.Contains(err1.Error(), "memo boom") {
			t.Errorf("first Do err = %v", err1)
		}
		// The error is memoised; a waiter/revisitor sees it, not a hang.
		_, err2 := m.Do("k", func() (int, error) { return 1, nil })
		if err2 == nil {
			t.Error("second Do should surface the memoised panic error")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("memo deadlocked after a panic")
	}
}

func TestResetAllMemos(t *testing.T) {
	a, b := NewMemo[int](), NewMemo[string]()
	if _, err := a.Do("x", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Do("y", func() (string, error) { return "s", nil }); err != nil {
		t.Fatal(err)
	}
	ResetAllMemos()
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatalf("ResetAllMemos left %d + %d entries", a.Len(), b.Len())
	}
}

func TestKeyOfDistinguishesInputs(t *testing.T) {
	type cfg struct {
		A int
		B float64
	}
	k1 := KeyOf("sim", cfg{A: 1, B: 2.5}, uint64(100))
	k2 := KeyOf("sim", cfg{A: 1, B: 2.5}, uint64(100))
	if k1 != k2 {
		t.Fatal("equal inputs produced different keys")
	}
	for _, other := range []string{
		KeyOf("sim", cfg{A: 2, B: 2.5}, uint64(100)),
		KeyOf("sim", cfg{A: 1, B: 2.5}, uint64(101)),
		KeyOf("other", cfg{A: 1, B: 2.5}, uint64(100)),
		KeyOf("sim", cfg{A: 1, B: 2.5}),
	} {
		if other == k1 {
			t.Fatalf("differing inputs collided: %q", k1)
		}
	}
}
