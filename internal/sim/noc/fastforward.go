package noc

// Fast-forward hooks (see chip/fastforward.go). The router is quiescent
// when no message awaits arbitration and nothing in flight is due (or
// overdue, i.e. retrying after lower-layer backpressure). Traversal
// completions are scheduled events exposed via NextEvent; the router
// accrues no per-cycle counters, so AdvanceCycles only moves its clock.

// Quiescent reports whether the next Tick would deliver, hand over, or
// arbitrate nothing.
func (r *Router) Quiescent(now uint64) bool {
	for _, q := range r.queues {
		if len(q) > 0 {
			return false
		}
	}
	for i := range r.inflight {
		if r.inflight[i].readyAt <= now+1 {
			return false
		}
	}
	for i := range r.resp {
		if r.resp[i].readyAt <= now+1 {
			return false
		}
	}
	return true
}

// NextEvent returns the earliest traversal completion in either
// direction, or ^uint64(0).
func (r *Router) NextEvent() uint64 {
	ev := ^uint64(0)
	for i := range r.inflight {
		if r.inflight[i].readyAt < ev {
			ev = r.inflight[i].readyAt
		}
	}
	for i := range r.resp {
		if r.resp[i].readyAt < ev {
			ev = r.resp[i].readyAt
		}
	}
	return ev
}

// AdvanceCycles advances the router's clock over n quiescent cycles;
// there is no per-cycle accounting to accrue.
func (r *Router) AdvanceCycles(now, n uint64) { r.now = now + n }
