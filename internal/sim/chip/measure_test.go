package chip

import (
	"math"
	"testing"

	"lpm/internal/trace"
)

func TestMeasureProducesSaneLPMRs(t *testing.T) {
	cfg := SingleCore("403.gcc")
	gen := trace.NewSynthetic(trace.MustProfile("403.gcc"))
	cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 20000)
	ch := New(cfg)
	ch.Run(20000, 20_000_000)
	m := ch.Measure(0, cpiExe)

	if m.CPIexe != cpiExe {
		t.Fatal("CPIexe not threaded through")
	}
	// LPMRs are >= 1-ish for memory-bound layers and decrease down the
	// hierarchy request chain only via miss-rate filtering; sanity-bound
	// them.
	if m.LPMR1() <= 0 {
		t.Fatalf("LPMR1 = %v", m.LPMR1())
	}
	if m.LPMR2() <= 0 || m.LPMR3() <= 0 {
		t.Fatalf("LPMR2 = %v, LPMR3 = %v", m.LPMR2(), m.LPMR3())
	}
	if m.Fmem < 0.3 || m.Fmem > 0.5 {
		t.Fatalf("fmem = %v for gcc (profile 0.40)", m.Fmem)
	}
	if m.Eta() <= 0 || m.Eta() > 1.5 {
		t.Fatalf("eta = %v", m.Eta())
	}
}

func TestModelStallTracksMeasuredStall(t *testing.T) {
	// Eq. (7)/(12) should predict the simulator's measured memory stall
	// within a factor-2 band across different behaviours (the model is
	// analytical, the simulator has second-order effects).
	for _, profile := range []string{"401.bzip2", "403.gcc", "429.mcf"} {
		cfg := SingleCore(profile)
		gen := trace.NewSynthetic(trace.MustProfile(profile))
		cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 20000)
		ch := New(cfg)
		ch.Run(20000, 20_000_000)
		m := ch.Measure(0, cpiExe)
		model, measured := m.StallEq12(), m.MeasuredStall
		if measured == 0 {
			continue
		}
		ratio := model / measured
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: model stall %.3f vs measured %.3f (ratio %.2f)",
				profile, model, measured, ratio)
		}
	}
}

func TestRecursionIdentityOnMeasuredData(t *testing.T) {
	// Eq. (4): C-AMAT1 == H1/CH1 + pMR1*eta1*C-AMAT2 approximately on
	// real measurements (exact only under the model's serving assumption).
	cfg := SingleCore("429.mcf")
	gen := trace.NewSynthetic(trace.MustProfile("429.mcf"))
	cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 20000)
	ch := New(cfg)
	ch.Run(20000, 20_000_000)
	m := ch.Measure(0, cpiExe)

	lhs := m.CAMAT1
	rhs := m.H1/m.CH1 + m.PMR1*m.Eta1()*(m.AMP1/m.Cm1)
	if lhs <= 0 {
		t.Fatal("no C-AMAT1")
	}
	if rel := math.Abs(lhs-rhs) / lhs; rel > 1e-9 {
		t.Fatalf("recursion with AMP1/Cm1 as C-AMAT2: lhs %.4f rhs %.4f", lhs, rhs)
	}
	// With the real measured C-AMAT2 the identity is approximate.
	rhs2 := m.H1/m.CH1 + m.PMR1*m.Eta1()*m.CAMAT2
	if rel := math.Abs(lhs-rhs2) / lhs; rel > 0.6 {
		t.Fatalf("measured recursion off by %.0f%%: lhs %.4f rhs %.4f", rel*100, lhs, rhs2)
	}
}

func TestMeasureAggregateConsistency(t *testing.T) {
	gens := []trace.Generator{
		trace.NewSynthetic(trace.MustProfile("401.bzip2")),
		trace.NewSynthetic(trace.MustProfile("433.milc")),
	}
	ch := New(NUCA16(gens))
	ch.Run(10000, 10_000_000)
	agg := ch.MeasureAggregate(0.5)
	m0 := ch.Measure(0, 0.5)
	m1 := ch.Measure(1, 0.5)
	// Aggregate fmem must lie between the two cores'.
	lo, hi := math.Min(m0.Fmem, m1.Fmem), math.Max(m0.Fmem, m1.Fmem)
	if agg.Fmem < lo-1e-9 || agg.Fmem > hi+1e-9 {
		t.Fatalf("aggregate fmem %v outside [%v, %v]", agg.Fmem, lo, hi)
	}
	// Shared-layer quantities match the per-core view.
	if agg.CAMAT2 != m0.CAMAT2 || agg.MR2 != m0.MR2 {
		t.Fatal("aggregate L2 view differs from per-core view")
	}
}

func TestMeasureIdleCore(t *testing.T) {
	ch := New(NUCA16(nil))
	ch.RunCycles(100)
	m := ch.Measure(3, 1)
	if m.LPMR1() != 0 || m.Fmem != 0 {
		t.Fatal("idle core should measure zeros")
	}
}
