package obs

// Prometheus text exposition (format version 0.0.4) for snapshots, so a
// running simulation can be scraped with standard tooling. Only the
// snapshot is exposed — the registry itself is single-goroutine, so
// serving code captures a Snapshot under its own lock and writes that.

import (
	"fmt"
	"io"
	"strings"
)

// promName converts a registry metric name ("l1.0.hits") into a valid
// Prometheus metric name ("lpm_l1_0_hits"): dots become underscores and
// everything is prefixed with the exporter namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("lpm_") + len(name))
	b.WriteString("lpm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promType maps a snapshot kind onto a Prometheus TYPE keyword.
// Histograms are exported as quantile summaries, matching HistValue.
func promType(kind string) string {
	switch kind {
	case "counter":
		return "counter"
	case "histogram":
		return "summary"
	default:
		return "gauge"
	}
}

// WritePromText writes the snapshot in the Prometheus text exposition
// format 0.0.4. Metrics keep their snapshot order (sorted by name);
// histograms are written as a summary: quantile series plus _sum-less
// _count and _mean companions. A nil snapshot writes nothing.
func (s *Snapshot) WritePromText(w io.Writer) error {
	return s.WritePromLabeled(w, "", nil)
}

// WritePromLabeled writes the snapshot with a fixed label set attached to
// every series — the fleet-exposition form, where one endpoint carries
// many runs' snapshots distinguished by run/tenant labels. labels is the
// pre-rendered inner label list (`run="r-1",tenant="acme"`); empty means
// unlabeled, reproducing WritePromText exactly. seen, when non-nil,
// suppresses duplicate # TYPE headers across calls: the fleet writer
// passes one map for the whole scrape so a metric shared by every run is
// typed once. A nil snapshot writes nothing.
func (s *Snapshot) WritePromLabeled(w io.Writer, labels string, seen map[string]bool) error {
	if s == nil {
		return nil
	}
	brace := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	for _, mv := range s.Metrics {
		name := promName(mv.Name)
		if seen == nil || !seen[name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(mv.Kind)); err != nil {
				return err
			}
			if seen != nil {
				seen[name] = true
			}
		}
		var err error
		switch mv.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s%s %d\n", name, brace(""), mv.Count)
		case "histogram":
			if mv.Hist == nil {
				continue
			}
			_, err = fmt.Fprintf(w, "%s%s %g\n%s%s %g\n%s%s %g\n%s_count%s %d\n%s_mean%s %g\n",
				name, brace(`quantile="0.5"`), mv.Hist.P50,
				name, brace(`quantile="0.9"`), mv.Hist.P90,
				name, brace(`quantile="0.99"`), mv.Hist.P99,
				name, brace(""), mv.Hist.Count,
				name, brace(""), mv.Hist.Mean)
		default:
			_, err = fmt.Fprintf(w, "%s%s %g\n", name, brace(""), mv.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
