package parallel

import (
	"fmt"
	"strings"
	"sync"
)

// KeyOf builds a deterministic memo key from the %#v representation of
// each part. The simulation inputs fingerprinted this way (explore.Point,
// trace.Profile, scale/window scalars) are plain value structs, so the
// representation is a faithful content fingerprint: equal inputs produce
// equal keys and differing inputs differ in at least one field's
// rendering.
func KeyOf(parts ...any) string {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&b, "%#v\x1f", p)
	}
	return b.String()
}

// memoEntry is one in-flight or completed computation.
type memoEntry[V any] struct {
	ready chan struct{} // closed when val/err are final
	val   V
	err   error
}

// Memo is a content-keyed, single-flight result cache: concurrent Do
// calls with the same key run the function once and share the result.
// The experiment drivers keep one Memo per simulation kind (design-point
// runs, profiling runs, alone-IPC runs), so a point evaluated by Table1
// is free when CaseStudyI or a speculative frontier batch revisits it.
type Memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	hits    int64
	misses  int64
}

// NewMemo returns an empty memo registered for ResetAllMemos.
func NewMemo[V any]() *Memo[V] {
	m := &Memo[V]{entries: make(map[string]*memoEntry[V])}
	registry.mu.Lock()
	registry.memos = append(registry.memos, m)
	registry.mu.Unlock()
	return m
}

// Do returns the memoised result for key, computing it with fn on the
// first call. Concurrent callers of a key in flight block until the
// computation finishes and share its outcome. A panic in fn is captured
// as the entry's error so waiters never deadlock; errors are memoised
// like values (the simulations here are deterministic, so retrying
// cannot succeed).
func (m *Memo[V]) Do(key string, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &memoEntry[V]{ready: make(chan struct{})}
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("parallel: memoised computation panicked: %v", r)
			}
			close(e.ready)
		}()
		e.val, e.err = fn()
	}()
	return e.val, e.err
}

// Stats returns the cumulative hit and miss counts. A hit is any Do
// call that found an existing entry, including one still in flight.
func (m *Memo[V]) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of memoised keys.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reset drops every entry and zeroes the counters.
func (m *Memo[V]) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[string]*memoEntry[V])
	m.hits, m.misses = 0, 0
}

// resettable lets the registry hold memos of different value types.
type resettable interface{ Reset() }

var registry struct {
	mu    sync.Mutex
	memos []resettable
}

// ResetAllMemos clears every Memo created through NewMemo — the
// serial-vs-parallel determinism tests use it to force real
// re-simulation between runs.
func ResetAllMemos() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.memos {
		m.Reset()
	}
}

// statser lets the registry aggregate counters across memos of different
// value types.
type statser interface{ Stats() (int64, int64) }

// MemoStats sums hit and miss counts over every Memo created through
// NewMemo — the process-wide view the observability facade publishes.
func MemoStats() (hits, misses int64) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.memos {
		if s, ok := m.(statser); ok {
			h, mi := s.Stats()
			hits += h
			misses += mi
		}
	}
	return hits, misses
}
