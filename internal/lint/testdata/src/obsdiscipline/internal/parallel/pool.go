// Package parallel sits outside the no-goroutine scope: concurrency
// belongs here by contract.
package parallel

// Spawn forks a worker; legal outside internal/sim and internal/core.
func Spawn(f func()) {
	go f()
}
