// Package fabric is a miniature of the sweep fabric's telemetry probe
// sets: the nil-receiver guard rule extends here, but only to the
// *Telemetry types and the ReprobeSet — the coordinator itself is never
// nil by contract.
package fabric

import "lpm/internal/obs"

// Telemetry is the coordinator-side probe set.
type Telemetry struct {
	reg   *obs.Registry
	hits  *obs.Counter
	total *obs.Counter
}

// prefix namespaces the per-worker gauges.
const prefix = "fabric.worker."

// NewTelemetry wires the probes; nil registry, nil telemetry.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		reg:   reg,
		hits:  reg.Counter("fabric.cache_probe_hits"),
		total: reg.Counter("fabric.granules_completed"),
	}
}

// CacheProbe records one shared-cache probe — properly guarded.
func (t *Telemetry) CacheProbe() {
	if t == nil {
		return
	}
	t.hits.Add(1)
}

// SyncQueue refreshes per-worker gauges: a dynamic prefix with a
// constant suffix is the accepted idiom.
func (t *Telemetry) SyncQueue(worker string) {
	if t == nil {
		return
	}
	t.reg.Gauge(prefix + worker + ".inflight").Add(1)
}

// Completed counts a granule but forgets the guard: the probe must stay
// a no-op on the nil (telemetry-off) receiver.
func (t *Telemetry) Completed() { // want "dereferences its receiver without the nil-receiver guard"
	t.total.Add(1)
}

// Dynamic registers a fully dynamic metric name, which destabilises
// snapshot ordering.
func (t *Telemetry) Dynamic(name string) {
	if t == nil {
		return
	}
	t.reg.Counter(name).Add(1) // want "must be a string constant or end in a constant suffix"
}

// Coordinator is fabric machinery, not a probe set: no guard required.
type Coordinator struct{ pending int }

// Submit dereferences its receiver unguarded — allowed, the rule only
// covers the telemetry types.
func (c *Coordinator) Submit() {
	c.pending++
}

// ReprobeSet remembers abandoned granule keys; it shares the
// nil-receiver contract so an unwired worker pays nothing.
type ReprobeSet struct{ keys map[string]struct{} }

// Add records a key — properly guarded.
func (s *ReprobeSet) Add(key string) {
	if s == nil {
		return
	}
	s.keys[key] = struct{}{}
}

// Len forgets the guard.
func (s *ReprobeSet) Len() int { // want "dereferences its receiver without the nil-receiver guard"
	return len(s.keys)
}
