package trace

import "lpm/internal/stats"

// WithSharedRegion wraps a generator so that a fraction of its memory
// accesses target a region common to all wrapped co-runners — genuinely
// shared data, the traffic a coherence protocol exists for. Accesses
// outside the shared fraction keep the underlying generator's private
// addresses (callers typically compose with WithOffset for those).
//
// base/size define the shared range; frac is the probability a memory
// access is redirected into it; seed makes the redirection reproducible.
func WithSharedRegion(g Generator, base, size uint64, frac float64, seed uint64) Generator {
	if size == 0 || frac <= 0 {
		return g
	}
	return &sharedGen{g: g, base: base, size: size, frac: frac, seed: seed,
		rng: stats.NewRNG(seed ^ 0x5a4ed)}
}

type sharedGen struct {
	g          Generator
	base, size uint64
	frac       float64
	seed       uint64
	rng        *stats.RNG
}

// Name implements Generator.
func (s *sharedGen) Name() string { return s.g.Name() }

// Reset implements Generator.
func (s *sharedGen) Reset() {
	s.g.Reset()
	s.rng = stats.NewRNG(s.seed ^ 0x5a4ed)
}

// Next implements Generator.
func (s *sharedGen) Next() Instr {
	in := s.g.Next()
	if in.Kind.IsMem() && s.rng.Bool(s.frac) {
		in.Addr = s.base + s.rng.Uint64n(s.size)&^0x7
	}
	return in
}
