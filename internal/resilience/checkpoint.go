package resilience

// Durable checkpoint envelope. A checkpoint file is
//
//	magic "LPMCKPT1" | uint64 LE payload length | uint64 LE CRC64-ECMA | payload
//
// The length-before-payload plus checksum makes every torn write
// detectable: a kill -9 mid-write leaves either the old complete file
// (the atomic rename never happened) or, on a non-atomic filesystem, a
// file the decoder rejects with a precise reason instead of feeding
// garbage into the resume path. The payload is JSON so checkpoints stay
// inspectable with jq after stripping the 24-byte header.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"os"

	"lpm/internal/cliutil"
	"lpm/internal/faultinject"
)

// checkpointMagic identifies the format and its version; a format
// change means a new magic, not a silent reinterpretation.
const checkpointMagic = "LPMCKPT1"

// checkpointHeaderSize is magic + length + checksum.
const checkpointHeaderSize = len(checkpointMagic) + 8 + 8

// MaxCheckpointPayload caps the declared payload length. Memo
// snapshots for the largest sweeps are tens of megabytes; anything
// claiming more is corruption, not data, and must not drive an
// allocation.
const MaxCheckpointPayload = 256 << 20

// ErrCorruptCheckpoint is the sentinel wrapped by every decode failure.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

var crcTable = crc64.MakeTable(crc64.ECMA)

// EnvelopeHeaderSize is the size of the fixed envelope header (magic +
// payload length + CRC64), exported for streaming consumers — the sweep
// fabric reads exactly this many bytes off a TCP connection before it
// knows how much payload to expect.
const EnvelopeHeaderSize = checkpointHeaderSize

// ParseEnvelopeHeader validates the fixed-size header of an envelope
// read incrementally from a stream and returns the declared payload
// length. It performs every check that does not need the payload bytes
// (magic, length cap); the caller reads the payload and passes the whole
// buffer to DecodeEnvelope for the CRC check. Failures wrap
// ErrCorruptCheckpoint exactly like DecodeEnvelope's.
func ParseEnvelopeHeader(header []byte) (payloadLen int, err error) {
	if len(header) != checkpointHeaderSize {
		return 0, fmt.Errorf("%w: %d header bytes, want %d",
			ErrCorruptCheckpoint, len(header), checkpointHeaderSize)
	}
	if string(header[:8]) != checkpointMagic {
		return 0, fmt.Errorf("%w: bad magic %q (want %q)",
			ErrCorruptCheckpoint, header[:8], checkpointMagic)
	}
	n := binary.LittleEndian.Uint64(header[8:])
	if n > MaxCheckpointPayload {
		return 0, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d-byte cap",
			ErrCorruptCheckpoint, n, MaxCheckpointPayload)
	}
	return int(n), nil
}

// EncodeEnvelope frames payload in the checkpoint envelope.
func EncodeEnvelope(payload []byte) []byte {
	out := make([]byte, checkpointHeaderSize+len(payload))
	copy(out, checkpointMagic)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(out[16:], crc64.Checksum(payload, crcTable))
	copy(out[checkpointHeaderSize:], payload)
	return out
}

// DecodeEnvelope verifies the envelope and returns the payload. Every
// failure wraps ErrCorruptCheckpoint and says what is wrong: truncated
// header, bad magic, oversized or mismatched length, checksum failure.
func DecodeEnvelope(data []byte) ([]byte, error) {
	if len(data) < checkpointHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header",
			ErrCorruptCheckpoint, len(data), checkpointHeaderSize)
	}
	if string(data[:8]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)",
			ErrCorruptCheckpoint, data[:8], checkpointMagic)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n > MaxCheckpointPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d-byte cap",
			ErrCorruptCheckpoint, n, MaxCheckpointPayload)
	}
	if got := uint64(len(data) - checkpointHeaderSize); got != n {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, file carries %d",
			ErrCorruptCheckpoint, n, got)
	}
	payload := data[checkpointHeaderSize:]
	want := binary.LittleEndian.Uint64(data[16:])
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: CRC64 mismatch (header %016x, payload %016x)",
			ErrCorruptCheckpoint, want, got)
	}
	return payload, nil
}

// SaveCheckpoint marshals v to JSON, frames it, and writes it to path
// atomically — a crash at any instant leaves the previous checkpoint
// intact.
func SaveCheckpoint(path string, v any) error {
	if err := faultinject.Hit("resilience.checkpoint.save", path); err != nil {
		return err
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if len(payload) > MaxCheckpointPayload {
		return fmt.Errorf("checkpoint %s: %d-byte payload exceeds the %d-byte cap",
			path, len(payload), MaxCheckpointPayload)
	}
	return cliutil.AtomicWriteFile(path, EncodeEnvelope(payload), 0o644)
}

// LoadCheckpoint reads and verifies path and unmarshals its payload
// into v. A missing file is returned as-is (os.IsNotExist-able) so
// callers can treat "no checkpoint yet" as a cold start.
func LoadCheckpoint(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	payload, err := DecodeEnvelope(data)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("checkpoint %s: %w: %v", path, ErrCorruptCheckpoint, err)
	}
	return nil
}
