package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"lpm/internal/fabric"
)

// TestWorkerHelpExitsClean pins the CI smoke contract: -help must be a
// success (main maps flag.ErrHelp to exit 0) and print the flag set.
func TestWorkerHelpExitsClean(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-help"}, &out, &errb)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-help: err = %v, want flag.ErrHelp (which main exits 0 on)", err)
	}
	for _, flagName := range []string{"-slots", "-name", "-retry", "-no-cache-probe"} {
		if !strings.Contains(errb.String(), flagName) {
			t.Fatalf("-help output lacks %s:\n%s", flagName, errb.String())
		}
	}
}

// TestWorkerVersionExitsClean pins -version: exit 0, and the output must
// name the protocol version and every registered granule kind.
func TestWorkerVersionExitsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, &errb); err != nil {
		t.Fatalf("-version: %v\n%s", err, errb.String())
	}
	got := out.String()
	want := []string{fmt.Sprintf("fabric-proto %d", fabric.ProtoVersion),
		"explore.sim", "sched.profile", "sched.alone"}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Fatalf("-version output lacks %q:\n%s", w, got)
		}
	}
}

// TestWorkerRequiresAddress pins that a bare invocation fails loudly
// instead of riding the -help success path.
func TestWorkerRequiresAddress(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), nil, &out, &errb)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no address: err = %v, want a hard error", err)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage line on stderr:\n%s", errb.String())
	}
}

// TestWorkerServesARealCoordinator drives run() end to end against an
// in-process coordinator: connect, serve a granule, exit 0 when the
// coordinator closes.
func TestWorkerServesARealCoordinator(t *testing.T) {
	c, err := fabric.Listen("127.0.0.1:0", fabric.Options{StraggleAfter: -1})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var out, errb bytes.Buffer
	go func() {
		done <- run(context.Background(), []string{"-quiet", "-slots", "1", c.Addr()}, &out, &errb)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitWorkers(ctx, 1); err != nil {
		t.Fatalf("worker never joined: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exit after coordinator close: %v\n%s", err, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker never exited after the coordinator closed")
	}
}
