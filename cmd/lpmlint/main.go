// Command lpmlint runs the repository's custom static-analysis suite
// (internal/lint): stdlib-only analyzers enforcing the simulator's
// determinism, accounting and observability invariants. It is the
// `make lint` gate.
//
// Usage:
//
//	lpmlint ./...                        # whole module
//	lpmlint internal/sim/...             # one subtree
//	lpmlint -enable determinism ./...    # one analyzer
//	lpmlint -disable errcheck ./...      # all but one
//	lpmlint -scope floateq=internal/core ./...
//	lpmlint -list                        # describe the analyzers
//	lpmlint -format=json ./...           # machine-readable findings
//	lpmlint -format=github ./...         # GitHub Actions annotations
//	lpmlint -workers 4 ./...             # bound the analysis fan-out
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
// Suppress a single finding with `//lint:ignore analyzer reason` on or
// directly above the offending line; the reason is mandatory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lpm/internal/cliutil"
	"lpm/internal/lint"
	"lpm/internal/resilience"
)

// errFindings marks the "lint ran fine and found problems" exit path.
var errFindings = errors.New("lint: findings")

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("C", ".", "module root directory (containing go.mod)")
		tags    = fs.String("tags", "", "comma-separated build tags for //go:build evaluation")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		list    = fs.Bool("list", false, "describe the registered analyzers and exit")
		format  = fs.String("format", "text", "output format: text, json, or github (Actions annotations)")
		workers = fs.Int("workers", 0, "max concurrent analysis goroutines (0 = GOMAXPROCS)")
	)
	scopes := map[string][]string{}
	fs.Func("scope", "analyzer=path[,path] — override an analyzer's default path scoping (repeatable)", func(v string) error {
		name, paths, ok := strings.Cut(v, "=")
		if !ok || name == "" || paths == "" {
			return fmt.Errorf("-scope wants analyzer=path[,path], got %q", v)
		}
		scopes[name] = append(scopes[name], splitList(paths)...)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "text", "json", "github":
	default:
		return fmt.Errorf("lpmlint: -format must be text, json or github, got %q", *format)
	}

	p := cliutil.NewPrinter(stdout)
	if *list {
		for _, a := range lint.Analyzers() {
			scope := "all packages"
			if len(a.Paths) > 0 {
				scope = strings.Join(a.Paths, ", ")
			}
			p.Printf("%-14s %s\n%14s   scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return p.Err()
	}

	paths, err := argPaths(fs.Args())
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	diags, err := lint.Run(lint.Config{
		Dir:     *dir,
		Tags:    splitList(*tags),
		Enable:  splitList(*enable),
		Disable: splitList(*disable),
		Scopes:  scopes,
		Paths:   paths,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	if err := printDiags(p, *format, diags); err != nil {
		return err
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lpmlint: %d finding(s)\n", len(diags))
		return errFindings
	}
	return nil
}

// printDiags renders findings in the selected format: the canonical
// text lines, a JSON array, or GitHub Actions ::error annotations
// (which the Actions runner turns into PR file comments).
func printDiags(p *cliutil.Printer, format string, diags []lint.Diagnostic) error {
	switch format {
	case "json":
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		p.Printf("%s\n", b)
	case "github":
		for _, d := range diags {
			p.Printf("::error file=%s,line=%d,col=%d,title=lpmlint(%s)::%s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, ghEscape(d.Message))
		}
	default:
		for _, d := range diags {
			p.Println(d)
		}
	}
	return p.Err()
}

// relPath renders a diagnostic path relative to the working directory
// (the repo root under make/CI), which is what Actions annotations
// need to attach to files.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// ghEscape escapes an annotation message per the Actions workflow-command
// rules (%, CR and LF are the command metacharacters).
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// argPaths maps package patterns to module-relative prefixes: "./..."
// (or no argument) lints everything; "internal/sim/..." a subtree; a
// plain directory exactly that package's subtree.
func argPaths(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			return nil, nil // everything
		case strings.HasSuffix(a, "/..."):
			out = append(out, strings.TrimSuffix(a, "/..."))
		case strings.HasPrefix(a, "-"):
			return nil, fmt.Errorf("lpmlint: flag %q must precede package patterns", a)
		default:
			out = append(out, a)
		}
	}
	return out, nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
