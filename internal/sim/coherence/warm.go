package coherence

// Functional-tier warming (see cache.Warmer): the directory's warm
// state is the sharer/owner map, and warming it has the same remote
// effects as the protocol proper — write fetches kill remote L1 copies,
// read fetches downgrade a modified owner — so the L1 tag arrays end a
// warm phase mutually consistent. Dirty data displaced by an
// invalidation is forwarded down as a warm writeback immediately (the
// detailed path queues it); invalidation latency does not exist in this
// tier.

import "lpm/internal/sim/cache"

// warmLower returns the lower layer's warm surface, or nil.
func (d *Directory) warmDown() cache.Warmer {
	w, _ := d.lower.(cache.Warmer)
	return w
}

// WarmFetch implements cache.Warmer.
func (d *Directory) WarmFetch(stamp uint64, src int, block uint64, write bool) {
	e := d.entryFor(block)
	if write {
		for s := 0; s < len(d.upper) && s < 64; s++ {
			if s == src || e.sharers&(1<<uint(s)) == 0 {
				continue
			}
			if _, dirty := d.invalidateAt(s, block); dirty {
				if w := d.warmDown(); w != nil {
					w.WarmWriteback(stamp, s, block)
				}
			}
			e.sharers &^= 1 << uint(s)
		}
		e.owner = src
		if src >= 0 && src < 64 {
			e.sharers = 1 << uint(src)
		} else {
			e.sharers = 0
		}
	} else {
		if e.owner >= 0 && e.owner != src {
			if _, dirty := d.invalidateAt(e.owner, block); dirty {
				if w := d.warmDown(); w != nil {
					w.WarmWriteback(stamp, e.owner, block)
				}
			}
			e.sharers &^= 1 << uint(e.owner)
			e.owner = -1
		}
		if src >= 0 && src < 64 {
			e.sharers |= 1 << uint(src)
		}
	}
	if w := d.warmDown(); w != nil {
		w.WarmFetch(stamp, src, block, write)
	}
}

// WarmWriteback implements cache.Warmer: the source no longer holds the
// block; pass the data down.
func (d *Directory) WarmWriteback(stamp uint64, src int, block uint64) {
	d.release(src, block)
	if w := d.warmDown(); w != nil {
		w.WarmWriteback(stamp, src, block)
	}
}
