package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultProfileValidates(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	cases := []Profile{
		{},
		{{Duration: 0, Weight: 1}},
		{{Duration: 10, Weight: -0.5}, {Duration: 10, Weight: 1.5}},
		{{Duration: 10, Weight: 0.4}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPaperRatesExact(t *testing.T) {
	// The calibrated default profile must reproduce the paper's three
	// perception rates: 96%, 89%, 73%.
	p := DefaultProfile()
	want := []float64{0.96, 0.89, 0.73}
	for i, s := range PaperScenarios() {
		got := PerceptionRate(p, s)
		if math.Abs(got-want[i]) > 1e-6 {
			t.Errorf("%s: rate %.6f, want %.2f", s.Name, got, want[i])
		}
	}
}

func TestSimulationMatchesClosedForm(t *testing.T) {
	p := DefaultProfile()
	for _, s := range PaperScenarios() {
		analytic := PerceptionRate(p, s)
		sim := Simulate(p, s, 200000, 42).Rate()
		if math.Abs(sim-analytic) > 0.01 {
			t.Errorf("%s: simulated %.4f vs analytic %.4f", s.Name, sim, analytic)
		}
	}
}

func TestRateDecreasesWithInterval(t *testing.T) {
	p := DefaultProfile()
	prev := 1.1
	for _, k := range []uint64{5, 10, 20, 40, 80, 160} {
		r := PerceptionRate(p, Scenario{Interval: k, Cost: 4})
		if r > prev+1e-12 {
			t.Fatalf("rate rose at interval %d: %v > %v", k, r, prev)
		}
		prev = r
	}
}

func TestRateDecreasesWithCost(t *testing.T) {
	p := DefaultProfile()
	prev := 1.1
	for _, c := range []uint64{0, 4, 10, 20, 40, 100} {
		r := PerceptionRate(p, Scenario{Interval: 20, Cost: c})
		if r > prev+1e-12 {
			t.Fatalf("rate rose at cost %d", c)
		}
		prev = r
	}
}

func TestLongBurstsAlwaysCaught(t *testing.T) {
	p := Profile{{Duration: 100000, Weight: 1}}
	r := PerceptionRate(p, Scenario{Interval: 50, Cost: 40})
	if r != 1 {
		t.Fatalf("rate = %v, want 1", r)
	}
}

func TestBurstsShorterThanCostNeverCaught(t *testing.T) {
	p := Profile{{Duration: 30, Weight: 1}}
	r := PerceptionRate(p, Scenario{Interval: 10, Cost: 40})
	if r != 0 {
		t.Fatalf("rate = %v, want 0", r)
	}
	sim := Simulate(p, Scenario{Interval: 10, Cost: 40}, 10000, 1)
	if sim.Perceived != 0 {
		t.Fatalf("simulation caught %d impossible bursts", sim.Perceived)
	}
}

func TestZeroIntervalRate(t *testing.T) {
	if PerceptionRate(DefaultProfile(), Scenario{}) != 0 {
		t.Fatal("zero interval must yield 0, not NaN")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := DefaultProfile()
	s := PaperScenarios()[0]
	a := Simulate(p, s, 5000, 7)
	b := Simulate(p, s, 5000, 7)
	if a != b {
		t.Fatal("same seed, different results")
	}
}

func TestSimulatePanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Simulate(Profile{}, PaperScenarios()[0], 10, 1)
}

func TestPropertySimulationTracksClosedForm(t *testing.T) {
	f := func(d1, d2 uint8, w uint8, k, c uint8) bool {
		dur1 := uint64(d1)%200 + 1
		dur2 := uint64(d2)%200 + 1
		wf := float64(w%99+1) / 100
		prof := Profile{
			{Duration: dur1, Weight: wf},
			{Duration: dur2, Weight: 1 - wf},
		}
		s := Scenario{Interval: uint64(k)%60 + 1, Cost: uint64(c) % 60}
		analytic := PerceptionRate(prof, s)
		sim := Simulate(prof, s, 50000, uint64(d1)<<8|uint64(d2)).Rate()
		return math.Abs(analytic-sim) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperScenarioShape(t *testing.T) {
	ss := PaperScenarios()
	if len(ss) != 3 {
		t.Fatal("want 3 scenarios")
	}
	if ss[0].Cost != 4 || ss[1].Cost != 4 || ss[2].Cost != 40 {
		t.Fatal("costs: hw=4, sw=40 per the paper")
	}
}
