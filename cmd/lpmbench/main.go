// Command lpmbench measures the simulator core's throughput and pins it
// to the repository as BENCH_core.json (schema lpm-bench/v1). Three
// engines are timed on the same fixed workload:
//
//   - detailed_stepped: the cycle-accurate engine with quiescent-cycle
//     fast-forward disabled — every cycle ticked.
//   - detailed_fastforward: the same engine with fast-forward enabled —
//     the default production configuration.
//   - functional: the warm-up tier (RunFunctional), in rounds/sec.
//
// Usage:
//
//	lpmbench                    # print the measurement
//	lpmbench -o BENCH_core.json # pin it (atomic rewrite)
//	lpmbench -check BENCH_core.json
//
// -check re-measures and compares the relative speedups — fast-forward
// over stepped, functional over stepped — against the pinned file,
// failing (exit 1) when a fresh ratio drops below 80% of the pinned one
// (>20% regression). Ratios, not absolute rates, are compared: absolute
// cycles/sec varies machine to machine, while the speedup the
// event-driven core delivers over its own stepped baseline is the
// invariant this gate protects.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/lint"
	"lpm/internal/resilience"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// Schema identifies the document format.
const Schema = "lpm-bench/v1"

// benchWorkload is the pinned measurement workload: the memory-bound
// 429.mcf on the NUCA standalone-reference platform — the exact
// configuration the Fig. 6-8 profiling and alone-IPC runs use, which
// dominate the report's wall-clock.
const benchWorkload = "429.mcf"

// benchConfig builds one fresh measurement chip.
func benchConfig() chip.Config {
	prof := trace.MustProfile(benchWorkload)
	return chip.NUCASingle(trace.NewSynthetic(prof), 64*chip.KB)
}

// Document is the pinned benchmark file.
type Document struct {
	Schema   string `json:"schema"`
	Commit   string `json:"commit"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	CPUs     int    `json:"cpus"`
	Workload string `json:"workload"`
	// Cycles is the measured span per repetition; Reps repetitions run
	// and the best (least-interfered) rate is kept.
	Cycles uint64 `json:"cycles"`
	Reps   int    `json:"reps"`
	// CyclesPerSec are best-of-reps simulated cycles (functional:
	// rounds) per wall-clock second, per engine.
	CyclesPerSec map[string]float64 `json:"cycles_per_sec"`
	// LintSeconds is the wall-clock of a full-suite lpmlint run over the
	// module: "cold" with an empty load cache, "warm" the no-change
	// re-run through the content-keyed cache. Recorded for trend
	// watching; the -check gate compares only the engine speedups.
	LintSeconds map[string]float64 `json:"lint_seconds,omitempty"`
}

// errRegression signals a clean run that found a regression.
var errRegression = errors.New("benchmark regression")

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errRegression):
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "pin the measurement to this JSON file (atomic rewrite)")
		check   = fs.String("check", "", "re-measure and fail on a >20% speedup regression against this pinned file")
		cycles  = fs.Uint64("cycles", 400000, "simulated cycles (functional: rounds) per repetition")
		reps    = fs.Int("reps", 3, "repetitions per engine; the best rate is kept")
		lintDir = fs.String("lintdir", ".", "module to time lpmlint over (empty or no go.mod: skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cycles == 0 || *reps <= 0 {
		return fmt.Errorf("lpmbench: -cycles and -reps must be positive")
	}

	doc, err := measure(ctx, *cycles, *reps)
	if err != nil {
		return err
	}
	if err := measureLint(ctx, *lintDir, doc); err != nil {
		return err
	}
	p := cliutil.NewPrinter(stdout)
	p.Printf("lpmbench: %s on %s/%s (%d cpus), %d cycles x %d reps\n",
		benchWorkload, doc.OS, doc.Arch, doc.CPUs, doc.Cycles, doc.Reps)
	for _, k := range []string{"detailed_stepped", "detailed_fastforward", "functional"} {
		p.Printf("  %-21s %12.0f cycles/sec (%.2fx stepped)\n",
			k, doc.CyclesPerSec[k], doc.CyclesPerSec[k]/doc.CyclesPerSec["detailed_stepped"])
	}
	if doc.LintSeconds != nil {
		p.Printf("  %-21s cold %.2fs, warm %.3fs (%.0fx)\n",
			"lint", doc.LintSeconds["cold"], doc.LintSeconds["warm"],
			doc.LintSeconds["cold"]/doc.LintSeconds["warm"])
	}
	if err := p.Err(); err != nil {
		return err
	}

	if *check != "" {
		if err := checkAgainst(*check, doc, stdout); err != nil {
			return err
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return cliutil.AtomicWriteFile(*out, append(data, '\n'), 0o644)
	}
	return nil
}

// measure times the three engines.
func measure(ctx context.Context, cycles uint64, reps int) (*Document, error) {
	doc := &Document{
		Schema:       Schema,
		Commit:       gitCommit(),
		Date:         time.Now().UTC().Format("2006-01-02"),
		Go:           runtime.Version(),
		OS:           runtime.GOOS,
		Arch:         runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workload:     benchWorkload + " on the NUCA standalone-reference platform (64 KB L1)",
		Cycles:       cycles,
		Reps:         reps,
		CyclesPerSec: map[string]float64{},
	}
	engines := []struct {
		name string
		run  func(*chip.Chip, uint64)
		prep func(*chip.Chip)
	}{
		{name: "detailed_stepped",
			prep: func(ch *chip.Chip) { ch.SetFastForward(false) },
			run:  func(ch *chip.Chip, n uint64) { ch.RunCycles(n) }},
		{name: "detailed_fastforward",
			prep: func(ch *chip.Chip) {},
			run:  func(ch *chip.Chip, n uint64) { ch.RunCycles(n) }},
		{name: "functional",
			prep: func(ch *chip.Chip) { ch.SetTier(chip.TierFunctional) },
			run:  func(ch *chip.Chip, n uint64) { _ = ch.RunFunctional(n) }},
	}
	for _, e := range engines {
		best := 0.0
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ch := chip.New(benchConfig())
			ch.SetContext(ctx)
			e.prep(ch)
			start := time.Now()
			e.run(ch, cycles)
			elapsed := time.Since(start).Seconds()
			if err := ch.Err(); err != nil {
				return nil, fmt.Errorf("lpmbench %s: %w", e.name, err)
			}
			if rate := float64(cycles) / elapsed; rate > best {
				best = rate
			}
		}
		doc.CyclesPerSec[e.name] = best
	}
	return doc, nil
}

// measureLint times a full-suite lpmlint pass over the module at dir,
// cold and then warm: the first lint.Run in a process loads with an
// empty content-keyed cache, the second is the no-change re-run. A
// missing go.mod (lpmbench run outside a module) skips silently;
// findings don't fail the benchmark — `make lint` is that gate.
func measureLint(ctx context.Context, dir string, doc *Document) error {
	if dir == "" {
		return nil
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cold, err := timeLint(dir)
	if err != nil {
		return fmt.Errorf("lpmbench lint: %w", err)
	}
	warm, err := timeLint(dir)
	if err != nil {
		return fmt.Errorf("lpmbench lint: %w", err)
	}
	doc.LintSeconds = map[string]float64{"cold": cold, "warm": warm}
	return nil
}

func timeLint(dir string) (float64, error) {
	start := time.Now()
	if _, err := lint.Run(lint.Config{Dir: dir}); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// checkAgainst compares fresh speedup ratios with the pinned document.
func checkAgainst(path string, fresh *Document, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var pinned Document
	if err := json.Unmarshal(data, &pinned); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if pinned.Schema != Schema {
		return fmt.Errorf("%s: schema %q, want %q", path, pinned.Schema, Schema)
	}
	pinnedStep := pinned.CyclesPerSec["detailed_stepped"]
	freshStep := fresh.CyclesPerSec["detailed_stepped"]
	if pinnedStep <= 0 || freshStep <= 0 {
		return fmt.Errorf("%s: missing detailed_stepped baseline", path)
	}
	p := cliutil.NewPrinter(stdout)
	failed := false
	for _, k := range []string{"detailed_fastforward", "functional"} {
		pr := pinned.CyclesPerSec[k] / pinnedStep
		fr := fresh.CyclesPerSec[k] / freshStep
		verdict := "ok"
		if fr < 0.8*pr {
			verdict = "REGRESSION"
			failed = true
		}
		p.Printf("check %-21s pinned %.2fx  fresh %.2fx  %s\n", k, pr, fr, verdict)
	}
	if err := p.Err(); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("%w: speedup over stepped fell more than 20%% below %s", errRegression, path)
	}
	return nil
}

// gitCommit stamps the pinned file with the working tree's HEAD; the
// benchmark itself never depends on it.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
