// Package obs stands in for the observability layer: reachable from
// the hooks but exempt from blame (nil-guarded off the steady-state
// path in the real tree).
package obs

// Record allocates, and no finding lands here.
func Record(vals []int) []int {
	return append([]int(nil), vals...)
}
