// Command lpmrun simulates one workload on a single-core chip and prints
// the full C-AMAT / LPM report: per-layer analyzer parameters, the three
// LPMRs, η, and modelled vs measured data stall time.
//
// Usage:
//
//	lpmrun -workload 403.gcc -instructions 30000 -l1 32768
//	lpmrun -timeline -tswindow 1024          # windowed LPMR timeline
//	lpmrun -serve localhost:9090 -serve-hold 30s
//
// With -serve, the run exposes live observability over HTTP while it
// executes: /metrics is Prometheus text (latest-window LPMR/C-AMAT
// gauges, stall attribution, and the per-layer metrics snapshot) and
// /timeline is the full windowed series as JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"lpm"
	"lpm/internal/cliutil"
	"lpm/internal/ctrl"
	"lpm/internal/obs/timeseries"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "410.bwaves", "built-in workload profile (see -list)")
		workers  = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		list     = fs.Bool("list", false, "list built-in workloads and exit")
		instr    = fs.Uint64("instructions", 30000, "instructions in the measured window")
		warmup   = fs.Uint64("warmup", 150000, "warm-up instructions discarded before measuring")
		warmFast = fs.Bool("warmup-fast", false, "run the warm-up in the functional tier (faster; results differ from detailed warm-up)")
		l1Size   = fs.Uint64("l1", 32*chip.KB, "L1 data cache size in bytes")
		l1Ports  = fs.Int("l1ports", 2, "L1 ports")
		l1MSHRs  = fs.Int("mshrs", 8, "L1 MSHR count")
		l2Size   = fs.Uint64("l2", 4*chip.MB, "L2 size in bytes")
		l2Banks  = fs.Int("l2banks", 8, "L2 interleaving (banks)")
		issue    = fs.Int("issue", 4, "pipeline issue width")
		iw       = fs.Int("iw", 32, "instruction window size")
		rob      = fs.Int("rob", 64, "ROB size")
		metrics  = fs.Bool("metrics", false, "print the per-layer metrics snapshot after the report")
		timeline = fs.Bool("timeline", false, "attach the cycle-windowed sampler and print a timeline summary")
		tsWindow = fs.Uint64("tswindow", 0, "timeline window width in cycles (0 = default)")
		tsAdapt  = fs.Bool("tsadaptive", false, "merge timeline windows into phase-aligned spans")
		serve    = fs.String("serve", "", "serve live /metrics and /timeline on this address during the run")
		hold     = fs.Duration("serve-hold", 0, "keep the -serve endpoints up this long after the run")
		jsonOut  = fs.Bool("json", false, "emit a versioned lpm-report/v2 document (single-run row) on stdout")
		watchdog = fs.Uint64("watchdog", 0, "no-progress cycle budget before a livelock diagnostic (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)

	p := cliutil.NewPrinter(stdout)
	if *list {
		p.Println(strings.Join(trace.ProfileNames(), "\n"))
		return p.Err()
	}
	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		return err
	}

	cfg := chip.SingleCore(*workload)
	cfg.Cores[0].CPU.IssueWidth = *issue
	cfg.Cores[0].CPU.IWSize = *iw
	cfg.Cores[0].CPU.LSQSize = *iw
	cfg.Cores[0].CPU.ROBSize = *rob
	cfg.Cores[0].L1 = chip.DefaultL1("L1D-0", *l1Size)
	cfg.Cores[0].L1.Ports = *l1Ports
	cfg.Cores[0].L1.MSHRs = *l1MSHRs
	cfg.L2 = chip.DefaultL2("L2", *l2Size)
	cfg.L2.Banks = *l2Banks

	gen := trace.NewSynthetic(prof)
	cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), *instr)

	ch := chip.New(cfg)
	ch.SetContext(ctx)
	if *watchdog > 0 {
		ch.SetWatchdog(*watchdog)
	}
	if *metrics || *serve != "" {
		ch.EnableObs()
	}

	var live *timeseries.Live
	if *serve != "" {
		live = timeseries.NewLive()
	}
	if *timeline || live != nil {
		tcfg := timeseries.Config{Width: *tsWindow, Adaptive: *tsAdapt, CPIexe: cpiExe}
		if live != nil {
			// Windows (and the throttled aggregate snapshot) are handed
			// off to the HTTP side as they close; the simulation itself
			// stays single-goroutine. The final snapshot after Run keeps
			// the end state exact.
			snap := ctrl.ThrottleSnapshots(func() { live.PublishSnapshot(ch.ObsSnapshot()) })
			tcfg.OnWindow = func(w timeseries.Window) {
				live.Publish(w)
				snap()
			}
		}
		s := ch.EnableTimeseries(tcfg)
		live.SetMeta(s.Width(), *tsAdapt)
	}
	if live != nil {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		// The exposition handlers live in internal/ctrl, shared with the
		// lpmserve control plane's per-run endpoints: one code path, one
		// output format.
		srv := &http.Server{Handler: ctrl.NewExpoMux(live)}
		defer srv.Close()
		go func() { _ = srv.Serve(ln) }()
		p.Printf("serving /metrics and /timeline on http://%s\n", ln.Addr())
	}

	budget := (*warmup + *instr) * 600
	runTarget := *warmup + *instr
	if *warmFast {
		ch.SetTier(chip.TierFunctional)
		ch.RunFunctional(*warmup)
		ch.SetTier(chip.TierDetailed)
		runTarget = *instr
	} else {
		ch.RunUntilRetired(*warmup, budget)
	}
	ch.ResetCounters()
	ch.Run(runTarget, budget)
	runErr := ch.Err()
	live.PublishSnapshot(ch.ObsSnapshot())
	live.Finish()

	if *jsonOut {
		return runJSON(stdout, *workload, *warmup, *instr, ch, cpiExe, runErr)
	}
	if runErr != nil {
		p.Printf("interrupted at cycle %d: %v\n", ch.Now(), runErr)
		if err := p.Err(); err != nil {
			return err
		}
		return runErr
	}

	r := ch.Snapshot()
	m := ch.Measure(0, cpiExe)

	p.Printf("workload   %s  (fmem=%.3f, footprint=%d KB)\n", *workload, m.Fmem, prof.Footprint/1024)
	p.Printf("core       issue=%d IW=%d ROB=%d   CPIexe=%.3f  IPC=%.3f\n", *issue, *iw, *rob, cpiExe, m.IPC)
	p.Printf("L1         %s\n", r.Cores[0].L1)
	p.Printf("L2         %s\n", r.L2)
	p.Printf("memory     reads=%d writes=%d avgReadLat=%.1f APC3=%.4f rowHit/miss/conf=%d/%d/%d\n",
		r.Mem.Reads, r.Mem.Writes, r.Mem.AvgReadLatency(), r.Mem.APC(),
		r.Mem.RowHits, r.Mem.RowMisses, r.Mem.RowConflicts)
	p.Println()
	p.Printf("LPMR1=%.3f  LPMR2=%.3f  LPMR3=%.3f   eta=%.4f  overlap=%.3f\n",
		m.LPMR1(), m.LPMR2(), m.LPMR3(), m.Eta(), m.OverlapRatio)
	p.Printf("thresholds T1(1%%)=%.3f T1(10%%)=%.3f", m.T1(1), m.T1(10))
	if t2, ok := m.T2(1); ok {
		p.Printf("  T2(1%%)=%.3f", t2)
	}
	p.Println()
	p.Printf("data stall per instruction: model(Eq.12)=%.4f  model(Eq.13)=%.4f  measured=%.4f  (%.1f%% of CPIexe)\n",
		m.StallEq12(), m.StallEq13(), m.MeasuredStall, 100*m.MeasuredStall/cpiExe)

	if *metrics && m.Obs != nil {
		p.Println()
		p.Printf("metrics (snapshot v%d):\n", m.Obs.Version)
		for _, mv := range m.Obs.Metrics {
			switch mv.Kind {
			case "counter":
				p.Printf("  %-24s %d\n", mv.Name, mv.Count)
			case "gauge":
				p.Printf("  %-24s %.4f\n", mv.Name, mv.Value)
			default:
				p.Printf("  %-24s n=%d mean=%.2f p50=%.1f p90=%.1f p99=%.1f\n",
					mv.Name, mv.Hist.Count, mv.Hist.Mean, mv.Hist.P50, mv.Hist.P90, mv.Hist.P99)
			}
		}
	}

	if *timeline && m.Timeline != nil {
		p.Println()
		printTimeline(p, m.Timeline)
	}
	if live != nil && *hold > 0 {
		p.Printf("holding exposition server for %s\n", *hold)
		time.Sleep(*hold)
	}
	return p.Err()
}

// runJSON emits the run as a minimal lpm-report/v2 document: one table1
// row named after the workload. An interrupted or livelocked run still
// produces a decodable document — the row carries the error, Partial is
// set, and the process exits non-zero.
func runJSON(stdout io.Writer, workload string, warmup, instr uint64, ch *chip.Chip, cpiExe float64, runErr error) error {
	rep := &lpm.Report{
		Schema: lpm.ReportSchema,
		Tool:   "lpmrun",
		Scale:  lpm.Scale{Warmup: warmup, Window: instr},
	}
	er := lpm.ExperimentReport{Name: "run"}
	if runErr != nil {
		// No Measure on an interrupted window: partial counters produce
		// NaNs, which JSON cannot carry.
		er.Table1 = []lpm.Table1JSON{{Name: workload, Err: runErr.Error()}}
		rep.Partial = true
		rep.Aborted = []string{"run"}
	} else {
		m := ch.Measure(0, cpiExe)
		er.Table1 = []lpm.Table1JSON{{
			Name:          workload,
			LPMR:          [3]float64{m.LPMR1(), m.LPMR2(), m.LPMR3()},
			IPC:           m.IPC,
			CPIexe:        m.CPIexe,
			Eta:           m.Eta(),
			StallModel:    m.StallEq12(),
			StallMeasured: m.MeasuredStall,
			Layers:        m.Obs,
		}}
	}
	rep.Experiments = append(rep.Experiments, er)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return runErr
}

// printTimeline renders the windowed series as a compact table: one row
// per window (eliding the middle of long runs), with the window's IPC,
// LPMR1 and the fraction of core cycles attributed to memory stalls.
func printTimeline(p *cliutil.Printer, ser *timeseries.Series) {
	p.Printf("timeline   %d windows (width=%d adaptive=%v dropped=%d):\n",
		len(ser.Windows), ser.Width, ser.Adaptive, ser.Dropped)
	p.Printf("  %-6s %-12s %-8s %-8s %-8s %s\n", "win", "cycles", "ipc", "lpmr1", "lpmr2", "memstall%")
	const headTail = 6
	for i, w := range ser.Windows {
		if len(ser.Windows) > 2*headTail && i == headTail {
			p.Printf("  ... %d windows elided ...\n", len(ser.Windows)-2*headTail)
		}
		if len(ser.Windows) > 2*headTail && i >= headTail && i < len(ser.Windows)-headTail {
			continue
		}
		st := w.AggregateStall()
		memPct := 0.0
		if t := st.Total(); t > 0 {
			memPct = 100 * float64(st.MemStall()) / float64(t)
		}
		p.Printf("  %-6d %5d-%-6d %-8.3f %-8.3f %-8.3f %5.1f%%\n",
			w.Index, w.Start, w.End, w.Derived.IPC, w.Derived.LPMR1, w.Derived.LPMR2, memPct)
	}
}
